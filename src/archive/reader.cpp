#include "archive/reader.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "archive/codec.hpp"
#include "common/checksum.hpp"
#include "core/format.hpp"

namespace sz14::archive {
namespace {

template <typename T>
std::vector<T> codec_decompress(const CodecOps& ops,
                                std::span<const std::uint8_t> payload,
                                const ExecPolicy& exec) {
  if constexpr (std::is_same_v<T, float>) {
    return ops.decompress32(payload, exec);
  } else {
    if (ops.decompress64 == nullptr)
      throw std::runtime_error(std::string("archive: codec '") + ops.name +
                               "' has no f64 path");
    return ops.decompress64(payload, exec);
  }
}

}  // namespace

ArchiveReader::ArchiveReader(const std::string& path, std::size_t threads)
    : path_(path), threads_(threads),
      in_(path, std::ios::binary | std::ios::ate) {
  if (!in_) throw std::runtime_error("archive: cannot open: " + path);
  file_size_ = static_cast<std::uint64_t>(in_.tellg());
  if (file_size_ < kSuperblockSize + kTrailerSize)
    throw std::runtime_error("archive: file too small: " + path);

  // Superblock.
  std::array<std::uint8_t, kSuperblockSize> sb{};
  in_.seekg(0);
  in_.read(reinterpret_cast<char*>(sb.data()), sb.size());
  if (!in_) throw std::runtime_error("archive: read failed: " + path);
  ByteReader sbr(sb);
  read_superblock(sbr);

  // Trailer.
  std::array<std::uint8_t, kTrailerSize> tr{};
  in_.seekg(static_cast<std::streamoff>(file_size_ - kTrailerSize));
  in_.read(reinterpret_cast<char*>(tr.data()), tr.size());
  if (!in_) throw std::runtime_error("archive: read failed: " + path);
  ByteReader trr(tr);
  const auto footer_size = trr.get<std::uint64_t>();
  const auto footer_crc = trr.get<std::uint32_t>();
  if (trr.get<std::uint32_t>() != kFooterMagic)
    throw std::runtime_error("archive: bad footer magic (truncated or not "
                             "finalized): " + path);
  if (footer_size > file_size_ - kSuperblockSize - kTrailerSize)
    throw std::runtime_error("archive: footer size exceeds file: " + path);

  // Footer.
  std::vector<std::uint8_t> footer(footer_size);
  in_.seekg(static_cast<std::streamoff>(file_size_ - kTrailerSize -
                                        footer_size));
  in_.read(reinterpret_cast<char*>(footer.data()),
           static_cast<std::streamsize>(footer.size()));
  if (!in_) throw std::runtime_error("archive: read failed: " + path);
  if (crc32(footer) != footer_crc)
    throw std::runtime_error("archive: footer checksum mismatch: " + path);
  ByteReader fr(footer);
  fields_ = read_footer(fr);

  // Index sanity: every payload must lie between superblock and footer.
  const std::uint64_t payload_end = file_size_ - kTrailerSize - footer_size;
  for (const auto& f : fields_)
    for (const auto& b : f.blocks)
      // Overflow-safe: offset + size can wrap in a crafted footer.
      if (b.offset < kSuperblockSize || b.size > payload_end ||
          b.offset > payload_end - b.size)
        throw std::runtime_error("archive: block offset out of bounds in "
                                 "field '" + f.name + "'");
}

const FieldEntry& ArchiveReader::field(std::string_view name) const {
  for (const auto& f : fields_)
    if (f.name == name) return f;
  throw std::invalid_argument("archive: no such field: " + std::string(name));
}

std::vector<std::uint8_t> ArchiveReader::read_payload(
    const BlockEntry& b, const std::string& field_name,
    std::size_t block_index) {
  std::vector<std::uint8_t> payload(b.size);
  in_.seekg(static_cast<std::streamoff>(b.offset));
  in_.read(reinterpret_cast<char*>(payload.data()),
           static_cast<std::streamsize>(payload.size()));
  if (!in_) throw std::runtime_error("archive: read failed: " + path_);
  if (crc32(payload) != b.crc)
    throw std::runtime_error("archive: block " + std::to_string(block_index) +
                             " checksum mismatch in field '" + field_name +
                             "' (corrupted payload)");
  return payload;
}

template <typename T>
std::vector<T> ArchiveReader::read_region_impl(std::string_view name,
                                               const Region& region) {
  const FieldEntry& f = field(name);
  constexpr std::uint8_t want = std::is_same_v<T, double> ? kDtypeF64
                                                          : kDtypeF32;
  if (f.dtype != want)
    throw std::invalid_argument("archive: dtype mismatch reading field '" +
                                f.name + "'");
  if (region.rank != f.dims.rank())
    throw std::invalid_argument("archive: region rank mismatch for field '" +
                                f.name + "'");
  for (std::size_t a = 0; a < region.rank; ++a) {
    if (region.extent[a] == 0)
      throw std::invalid_argument("archive: empty region extent");
    // Overflow-safe: origin + extent can wrap for a hostile region.
    if (region.extent[a] > f.dims.extent(a) ||
        region.origin[a] > f.dims.extent(a) - region.extent[a])
      throw std::invalid_argument("archive: region exceeds field bounds on "
                                  "axis " + std::to_string(a));
  }

  const CodecOps& ops = *codec_by_id(f.codec);  // validated in read_footer
  const BlockGrid grid(f.dims, f.block_dims);
  const Dims out_dims = region.shape();
  std::vector<T> out(out_dims.count());

  // Select intersecting blocks, then read payloads sequentially (shared
  // file handle) and decode + scatter in parallel.
  std::vector<std::size_t> touched;
  for (std::size_t i = 0; i < grid.block_count(); ++i)
    if (grid.intersects(i, region)) touched.push_back(i);

  std::vector<std::vector<std::uint8_t>> payloads(touched.size());
  for (std::size_t t = 0; t < touched.size(); ++t)
    payloads[t] = read_payload(f.blocks[touched[t]], f.name, touched[t]);

  // Lazy: metadata-only consumers (e.g. `archive ls`) never pay for a pool.
  if (!pool_) pool_ = std::make_unique<ThreadPool>(threads_);
  pool_->run_batch(touched.size(), [&](std::size_t t) {
    const std::size_t i = touched[t];
    std::array<std::size_t, kMaxDims> bo{};
    grid.block_origin(i, bo);
    const Dims be = grid.block_extents(i);

    const std::vector<T> block = codec_decompress<T>(ops, payloads[t], {});
    blocks_decoded_.fetch_add(1, std::memory_order_relaxed);
    if (block.size() != be.count())
      throw std::runtime_error("archive: block " + std::to_string(i) +
                               " of field '" + f.name + "' decoded to " +
                               std::to_string(block.size()) +
                               " values, expected " +
                               std::to_string(be.count()));

    // Intersection of block cuboid and region, then strided copy.
    std::array<std::size_t, kMaxDims> src_origin{};  // block-local
    std::array<std::size_t, kMaxDims> dst_origin{};  // region-local
    std::array<std::size_t, kMaxDims> ext{};
    for (std::size_t a = 0; a < region.rank; ++a) {
      const std::size_t lo = std::max(bo[a], region.origin[a]);
      const std::size_t hi = std::min(bo[a] + be.extent(a),
                                      region.origin[a] + region.extent[a]);
      src_origin[a] = lo - bo[a];
      dst_origin[a] = lo - region.origin[a];
      ext[a] = hi - lo;
    }
    copy_subcuboid(block.data(), be,
                   std::span<const std::size_t>(src_origin.data(),
                                                region.rank),
                   out.data(), out_dims,
                   std::span<const std::size_t>(dst_origin.data(),
                                                region.rank),
                   std::span<const std::size_t>(ext.data(), region.rank));
  });
  return out;
}

std::vector<float> ArchiveReader::read_region(std::string_view name,
                                              const Region& region) {
  return read_region_impl<float>(name, region);
}

std::vector<double> ArchiveReader::read_region64(std::string_view name,
                                                 const Region& region) {
  return read_region_impl<double>(name, region);
}

std::vector<float> ArchiveReader::read_field(std::string_view name) {
  return read_region_impl<float>(name, Region::whole(field(name).dims));
}

std::vector<double> ArchiveReader::read_field64(std::string_view name) {
  return read_region_impl<double>(name, Region::whole(field(name).dims));
}

}  // namespace sz14::archive
