#include "archive/stat_format.hpp"

#include <cstdio>
#include <stdexcept>

#include "archive/codec.hpp"
#include "core/format.hpp"

namespace sz14::archive {
namespace {

const char* dtype_name(std::uint8_t dtype) {
  return dtype == kDtypeF64 ? "f64" : "f32";
}

const char* codec_name(std::uint8_t id) {
  const CodecOps* ops = codec_by_id(id);
  return ops != nullptr ? ops->name : "?";
}

std::string printf_line(const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof buf, fmt, args...);
  return buf;
}

}  // namespace

FieldStat field_stat(const FieldEntry& f, bool with_blocks) {
  FieldStat s;
  s.name = f.name;
  s.dtype = f.dtype;
  s.codec = f.codec;
  s.eb_abs = f.eb_abs;
  s.dims = f.dims;
  s.block_dims = f.block_dims;
  s.block_count = f.blocks.size();
  s.payload_bytes = f.payload_bytes();
  s.raw_bytes = f.dims.count() *
                (f.dtype == kDtypeF64 ? sizeof(double) : sizeof(float));
  if (!f.blocks.empty()) {
    s.min = f.blocks.front().min;
    s.max = f.blocks.front().max;
    for (const auto& b : f.blocks) {
      s.min = std::min(s.min, b.min);
      s.max = std::max(s.max, b.max);
    }
  }
  if (with_blocks) {
    s.blocks.reserve(f.blocks.size());
    for (const auto& b : f.blocks)
      s.blocks.push_back(BlockStat{b.size, b.min, b.max});
  }
  return s;
}

std::string format_field_stat(const FieldStat& s) {
  std::string out;
  out += printf_line("field %s\n", s.name.c_str());
  out += printf_line("  dtype         : %s\n", dtype_name(s.dtype));
  out += printf_line("  codec         : %s\n", codec_name(s.codec));
  out += printf_line("  shape         : %s (%llu values)\n",
                     s.dims.to_string().c_str(),
                     static_cast<unsigned long long>(s.dims.count()));
  out += printf_line("  block         : %s (%llu blocks)\n",
                     s.block_dims.to_string().c_str(),
                     static_cast<unsigned long long>(s.block_count));
  if (s.eb_abs != 0.0)
    out += printf_line("  error bound   : %.6g (absolute)\n", s.eb_abs);
  else
    out += "  error bound   : lossless\n";
  out += printf_line("  payload bytes : %llu of %llu raw (CF %.2f)\n",
                     static_cast<unsigned long long>(s.payload_bytes),
                     static_cast<unsigned long long>(s.raw_bytes),
                     s.compression_factor());
  out += printf_line("  value range   : %.6g .. %.6g\n", s.min, s.max);
  if (!s.blocks.empty()) {
    out += printf_line("  %-8s %12s %14s %14s\n", "block", "bytes", "min",
                       "max");
    for (std::size_t i = 0; i < s.blocks.size(); ++i)
      out += printf_line("  %-8zu %12llu %14.6g %14.6g\n", i,
                         static_cast<unsigned long long>(s.blocks[i].bytes),
                         s.blocks[i].min, s.blocks[i].max);
  }
  return out;
}

void encode_field_stat(const FieldStat& s, ByteWriter& out) {
  out.put_string(s.name);
  out.put(s.dtype);
  out.put(s.codec);
  out.put(s.eb_abs);
  write_dims(s.dims, out);
  write_dims(s.block_dims, out);
  out.put_varint(s.block_count);
  out.put_varint(s.payload_bytes);
  out.put_varint(s.raw_bytes);
  out.put(s.min);
  out.put(s.max);
  out.put_varint(s.blocks.size());
  for (const auto& b : s.blocks) {
    out.put_varint(b.bytes);
    out.put(b.min);
    out.put(b.max);
  }
}

FieldStat decode_field_stat(ByteReader& in) {
  FieldStat s;
  s.name = in.get_string();
  s.dtype = in.get<std::uint8_t>();
  s.codec = in.get<std::uint8_t>();
  s.eb_abs = in.get<double>();
  s.dims = read_dims(in);
  s.block_dims = read_dims(in);
  s.block_count = in.get_varint();
  s.payload_bytes = in.get_varint();
  s.raw_bytes = in.get_varint();
  s.min = in.get<double>();
  s.max = in.get<double>();
  const std::uint64_t n = in.get_varint();
  // Each block row is at least 17 wire bytes (1-byte varint + two f64);
  // bound the reserve by what the stream can actually hold so a hostile
  // count cannot trigger a huge allocation before the read fails.
  if (n > in.remaining() / 17)
    throw std::runtime_error("stat: block row count exceeds stream");
  s.blocks.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    BlockStat b;
    b.bytes = in.get_varint();
    b.min = in.get<double>();
    b.max = in.get<double>();
    s.blocks.push_back(b);
  }
  return s;
}

}  // namespace sz14::archive
