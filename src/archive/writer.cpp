#include "archive/writer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <thread>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "archive/blocking.hpp"
#include "archive/codec.hpp"
#include "archive/parity.hpp"
#include "common/checksum.hpp"
#include "common/failpoint.hpp"
#include "core/format.hpp"

namespace sz14::archive {
namespace {

template <typename T>
std::vector<std::uint8_t> codec_compress(const CodecOps& ops,
                                         std::span<const T> block,
                                         const Dims& dims, double eb_abs,
                                         const ExecPolicy& exec) {
  if constexpr (std::is_same_v<T, float>) {
    return ops.compress32(block, dims, eb_abs, exec);
  } else {
    return ops.compress64(block, dims, eb_abs, exec);
  }
}

}  // namespace

ArchiveWriter::ArchiveWriter(const std::string& path, std::size_t threads,
                             ExecPolicy policy, std::uint32_t parity_group,
                             std::uint64_t shard_size)
    : path_(path), parity_group_(parity_group), shard_size_(shard_size),
      out_(path, std::ios::binary | std::ios::trunc), policy_(policy) {
  if (!out_) throw std::runtime_error("archive: cannot create: " + path);
  ByteWriter sb;
  if (sharded())
    write_manifest_superblock(sb, parity_group_ > 0 ? kFlagParity : 0);
  else
    write_superblock(sb, parity_group_ > 0 ? kFlagParity : 0);
  raw_write(sb.view(), "superblock write");
  if (policy_.pool != nullptr) {
    pool_ = policy_.pool;
  } else {
    // The explicit ctor argument wins; otherwise the policy's worker
    // count applies (0 = hardware_concurrency), per the ExecPolicy docs.
    owned_pool_ = std::make_unique<ThreadPool>(
        threads != 0 ? threads : policy_.threads);
    pool_ = owned_pool_.get();
  }
}

ArchiveWriter::~ArchiveWriter() {
  if (finished_) return;
  try {
    finish();
  } catch (const std::exception& e) {
    // A destructor must not throw, but silence would hide a corrupt or
    // unsealed archive from the operator entirely; say what happened and
    // how far the file is still readable.
    std::fprintf(stderr,
                 "archive: WARNING: failed to seal '%s' in destructor: %s "
                 "(file is consistent through byte %llu)\n",
                 path_.c_str(), e.what(),
                 static_cast<unsigned long long>(clean_size_));
  } catch (...) {
    std::fprintf(stderr,
                 "archive: WARNING: failed to seal '%s' in destructor "
                 "(unknown error; file is consistent through byte %llu)\n",
                 path_.c_str(),
                 static_cast<unsigned long long>(clean_size_));
  }
}

void ArchiveWriter::funnel_write(std::ofstream& os, const std::string& fpath,
                                 std::uint64_t* pos,
                                 std::span<const std::uint8_t> data,
                                 const char* what) {
  // check(), not trigger(): this site enacts EVERY kind itself so the
  // on-disk shape is right.  trigger()'s central kAbort would _Exit
  // inside the registry with this writer's ofstream buffer unflushed —
  // the file would end at the last checkpoint instead of mid-write, and
  // the crash drill would be testing a much kinder failure than SIGKILL.
  if (const auto f = fail::check("archive.writer.write")) {
    if (f->kind == fail::Kind::kStall) {
      std::this_thread::sleep_for(std::chrono::milliseconds(f->arg));
      // delay only; fall through to the normal write below
    } else if (f->kind == fail::Kind::kError ||
               f->kind == fail::Kind::kEnospc) {
      broken_ = true;
      throw std::runtime_error(
          std::string("archive.writer.write: injected ") +
          (f->kind == fail::Kind::kError ? "I/O error" : "ENOSPC") +
          " (failpoint)");
    } else {
      // kShort/kTorn/kAbort put a PREFIX of the buffer on disk (flushed,
      // so it is really there) before failing — the shape of a real
      // ENOSPC or power-cut mid-write — and abort then kills the process
      // outright, simulating SIGKILL between two writes.
      const std::size_t part =
          std::min<std::size_t>(data.size(),
                                f->arg > 0 ? static_cast<std::size_t>(f->arg)
                                           : 0);
      os.write(reinterpret_cast<const char*>(data.data()),
               static_cast<std::streamsize>(part));
      os.flush();
      if (f->kind == fail::Kind::kAbort) {
        std::fflush(nullptr);
        std::_Exit(fail::kAbortExitCode);
      }
      broken_ = true;
      throw std::runtime_error(
          "archive: torn write at offset " + std::to_string(*pos + part) +
          " in " + fpath + " (failpoint)");
    }
  }
  os.write(reinterpret_cast<const char*>(data.data()),
           static_cast<std::streamsize>(data.size()));
  if (!os) {
    broken_ = true;
    throw std::runtime_error(
        std::string("archive: ") + what + " failed at offset " +
        std::to_string(*pos) + " in " + fpath +
        " (disk full or I/O error; archive is consistent through byte " +
        std::to_string(clean_size_) + ")");
  }
  *pos += data.size();
}

void ArchiveWriter::raw_write(std::span<const std::uint8_t> data,
                              const char* what) {
  funnel_write(out_, path_, &offset_, data, what);
}

void ArchiveWriter::roll_shard() {
  if (shard_out_.is_open()) {
    shard_out_.flush();
    if (!shard_out_) {
      broken_ = true;
      throw std::runtime_error("archive: shard flush failed: " + shard_path_);
    }
    shard_out_.close();
  }
  const std::size_t index = shards_.size();
  shard_path_ = shard_file_name(path_, index);
  shard_out_.open(shard_path_, std::ios::binary | std::ios::trunc);
  if (!shard_out_) {
    broken_ = true;
    throw std::runtime_error("archive: cannot create shard: " + shard_path_);
  }
  shard_file_offset_ = 0;
  ByteWriter hdr;
  write_shard_header(hdr, static_cast<std::uint32_t>(index));
  funnel_write(shard_out_, shard_path_, &shard_file_offset_, hdr.view(),
               "shard header write");
  shards_.push_back(ShardEntry{shard_table_name(path_, index), 0, 0});
}

void ArchiveWriter::payload_write(std::span<const std::uint8_t> data,
                                  const char* what) {
  if (!sharded()) {
    raw_write(data, what);
    return;
  }
  // Roll before any payload that would overflow the threshold; a payload
  // never spans shards (one bigger than the threshold gets its own shard).
  if (!shard_out_.is_open() ||
      (shards_.back().size > 0 &&
       shards_.back().size + data.size() > shard_size_))
    roll_shard();
  funnel_write(shard_out_, shard_path_, &shard_file_offset_, data, what);
  shards_.back().size += data.size();
  shards_.back().crc = crc32_update(shards_.back().crc, data);
  logical_offset_ += data.size();
}

void ArchiveWriter::write_checkpoint() {
  // Sharded: the shard stream must be ON DISK before the manifest
  // checkpoint that indexes it — a checkpoint must never win a race with
  // its own payload bytes.
  if (sharded() && shard_out_.is_open()) {
    shard_out_.flush();
    if (!shard_out_) {
      broken_ = true;
      throw std::runtime_error("archive: shard flush failed: " + shard_path_);
    }
  }
  ByteWriter footer;
  if (sharded()) write_shard_table(shards_, footer);
  write_footer(fields_, footer, parity_group_ > 0 ? kFlagParity : 0);
  ByteWriter trailer;
  trailer.put<std::uint64_t>(footer.size());
  trailer.put<std::uint32_t>(crc32(footer.view()));
  trailer.put<std::uint32_t>(sharded() ? kManifestFooterMagic : kFooterMagic);
  raw_write(footer.view(), "checkpoint footer write");
  raw_write(trailer.view(), "checkpoint trailer write");
  // Flush so a process killed after append_field() returns leaves the
  // checkpoint on disk, not in a stdio buffer.  (Media durability across
  // an OS crash would additionally need fsync; process-crash consistency
  // is the contract here.)
  out_.flush();
  if (!out_) {
    broken_ = true;
    throw std::runtime_error("archive: checkpoint flush failed at offset " +
                             std::to_string(offset_) + " in " + path_);
  }
  clean_size_ = offset_;
}

template <typename T>
void ArchiveWriter::append_impl(const std::string& name,
                                std::span<const T> data, const Dims& dims,
                                const Dims& block_dims,
                                const std::string& codec_name, double eb_abs) {
  if (finished_)
    throw std::logic_error("archive: append_field after finish()");
  if (broken_)
    throw std::runtime_error(
        "archive: writer for " + path_ + " is unusable after a write "
        "failure (file is salvageable through byte " +
        std::to_string(clean_size_) + ")");
  if (name.empty())
    throw std::invalid_argument("archive: field name must be non-empty");
  if (names_.contains(name))
    throw std::invalid_argument("archive: duplicate field name: " + name);
  if (data.size() != dims.count())
    throw std::invalid_argument("archive: data size " +
                                std::to_string(data.size()) +
                                " does not match dims " + dims.to_string());
  const CodecOps* ops = codec_by_name(codec_name);
  if (ops == nullptr)
    throw std::invalid_argument("archive: unknown codec: " + codec_name);
  constexpr bool is64 = std::is_same_v<T, double>;
  if (is64 && ops->compress64 == nullptr)
    throw std::invalid_argument("archive: codec '" + codec_name +
                                "' has no f64 path");

  const BlockGrid grid(dims, block_dims);
  const std::size_t n = grid.block_count();

  // Per-writer execution policy: resolve the mode once on this thread
  // (workers never consult process state) and hand every block task the
  // writer's scratch arena — per-worker buffer slots that persist across
  // appends, so batch ingest allocates walk buffers only on first touch.
  // Each block task is a complete walk+encode, so with several blocks in
  // flight block i+1's prediction pass naturally overlaps block i's
  // entropy encode — the same pipeline shape as the parallel slab codec.
  ExecPolicy block_exec = policy_;
  block_exec.mode = policy_.resolved_mode();
  block_exec.pool = nullptr;  // block tasks are single-threaded
  block_exec.scratch = &scratch_;

  // Gather + compress every block in parallel; payloads land in order.
  std::vector<std::vector<std::uint8_t>> payloads(n);
  std::vector<std::pair<double, double>> ranges(n);
  pool_->run_batch(n, [&](std::size_t i) {
    std::array<std::size_t, kMaxDims> origin{};
    grid.block_origin(i, origin);
    const Dims be = grid.block_extents(i);
    // Gather staging comes from the arena too (its own buffer — the codec
    // uses the recon slot while the gathered block is still live), so
    // steady-state ingest allocates nothing per block.
    const std::span<T> block = scratch_.local().gather<T>(be.count());
    const std::array<std::size_t, kMaxDims> zero{};
    copy_subcuboid(data.data(), dims,
                   std::span<const std::size_t>(origin.data(), dims.rank()),
                   block.data(), be,
                   std::span<const std::size_t>(zero.data(), dims.rank()),
                   be.extents());
    const auto [lo, hi] = std::minmax_element(block.begin(), block.end());
    ranges[i] = {static_cast<double>(*lo), static_cast<double>(*hi)};
    payloads[i] = codec_compress<T>(*ops, block, be, eb_abs, block_exec);
  });

  FieldEntry f;
  f.name = name;
  f.dtype = is64 ? kDtypeF64 : kDtypeF32;
  f.codec = ops->id;
  f.eb_abs = ops->lossy ? eb_abs : 0.0;
  f.dims = dims;
  f.block_dims = grid.block();
  f.blocks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    BlockEntry b;
    b.size = payloads[i].size();
    b.crc = crc32(payloads[i]);
    b.min = ranges[i].first;
    b.max = ranges[i].second;
    // Sharded mode may roll to a new shard first, so the offset is only
    // known once payload_write has picked the destination.
    b.offset = payload_offset();
    payload_write(payloads[i], "block payload write");
    f.blocks.push_back(b);
  }
  // Parity payloads ride AFTER the field's data payloads and BEFORE the
  // checkpoint, so a checkpoint never indexes parity that is not on disk.
  if (parity_group_ > 0) {
    f.parity_group = parity_group_;
    const std::size_t n_groups = parity_group_count(n, parity_group_);
    f.parity.reserve(n_groups);
    for (std::size_t g = 0; g < n_groups; ++g) {
      const std::size_t lo = g * parity_group_;
      const std::size_t hi = std::min(lo + parity_group_, n);
      const std::vector<std::uint8_t> par = compute_group_parity(
          std::span<const std::vector<std::uint8_t>>(payloads.data() + lo,
                                                     hi - lo));
      ParityGroupEntry p;
      p.offset = payload_offset();
      p.size = par.size();
      p.crc = crc32(par);
      payload_write(par, "parity payload write");
      f.parity.push_back(p);
    }
  }
  names_.insert(name);  // recorded only once the append fully succeeded
  fields_.push_back(std::move(f));
  // Seal everything appended so far: a crash from here on loses nothing.
  write_checkpoint();
}

void ArchiveWriter::append_field(const std::string& name,
                                 std::span<const float> data, const Dims& dims,
                                 const Dims& block_dims,
                                 const std::string& codec_name,
                                 double eb_abs) {
  append_impl<float>(name, data, dims, block_dims, codec_name, eb_abs);
}

void ArchiveWriter::append_field(const std::string& name,
                                 std::span<const double> data,
                                 const Dims& dims, const Dims& block_dims,
                                 const std::string& codec_name,
                                 double eb_abs) {
  append_impl<double>(name, data, dims, block_dims, codec_name, eb_abs);
}

void ArchiveWriter::finish() {
  if (finished_) return;
  if (broken_)
    throw std::runtime_error(
        "archive: cannot finalize " + path_ + " after a write failure "
        "(file is salvageable through byte " + std::to_string(clean_size_) +
        "; run `sz14 archive fsck --repair`)");
  // The per-append checkpoint already sealed the file; only an archive
  // with zero appends still needs its (empty) footer written.
  if (clean_size_ != offset_) write_checkpoint();
  if (shard_out_.is_open()) {
    shard_out_.close();
    if (!shard_out_)
      throw std::runtime_error("archive: shard finalize failed: " +
                               shard_path_);
  }
  out_.close();
  if (!out_) throw std::runtime_error("archive: finalize failed: " + path_);
  finished_ = true;
}

}  // namespace sz14::archive
