// Umbrella header for the SZA block-sharded archive subsystem:
//   codec.hpp          — CCID-style pluggable block-codec registry
//   blocking.hpp       — block grid / hyperslab arithmetic
//   archive_format.hpp — on-disk container layout (superblock/footer)
//   writer.hpp         — append-only parallel writer (crash-consistent
//                        per-append footer checkpoints)
//   reader.hpp         — footer-indexed random-access reader (strict,
//                        salvage, or degraded open; parity read-repair)
//   parity.hpp         — XOR parity-group math (reconstruct/recompute)
//   fsck.hpp           — consistency check / crash + parity repair
//   scrub.hpp          — online payload verify + in-place parity heal
//   single_flight.hpp  — concurrent-decode coalescing for the serving path
//   stat_format.hpp    — field/index summaries (CLI stat + serve `stat` op)
#pragma once

#include "archive/archive_format.hpp"
#include "archive/blocking.hpp"
#include "archive/codec.hpp"
#include "archive/fsck.hpp"
#include "archive/parity.hpp"
#include "archive/reader.hpp"
#include "archive/scrub.hpp"
#include "archive/single_flight.hpp"
#include "archive/stat_format.hpp"
#include "archive/writer.hpp"
