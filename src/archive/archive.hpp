// Umbrella header for the SZA block-sharded archive subsystem:
//   codec.hpp          — CCID-style pluggable block-codec registry
//   blocking.hpp       — block grid / hyperslab arithmetic
//   archive_format.hpp — on-disk container layout (superblock/footer)
//   writer.hpp         — append-only parallel writer (crash-consistent
//                        per-append footer checkpoints)
//   reader.hpp         — footer-indexed random-access reader (strict or
//                        salvage open)
//   fsck.hpp           — consistency check / crash repair
//   single_flight.hpp  — concurrent-decode coalescing for the serving path
//   stat_format.hpp    — field/index summaries (CLI stat + serve `stat` op)
#pragma once

#include "archive/archive_format.hpp"
#include "archive/blocking.hpp"
#include "archive/codec.hpp"
#include "archive/fsck.hpp"
#include "archive/reader.hpp"
#include "archive/single_flight.hpp"
#include "archive/stat_format.hpp"
#include "archive/writer.hpp"
