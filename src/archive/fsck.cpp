#include "archive/fsck.hpp"

#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "archive/reader.hpp"
#include "common/checksum.hpp"
#include "common/pread_file.hpp"

namespace sz14::archive {

FsckReport fsck_scan(const std::string& path) {
  FsckReport report;
  report.path = path;

  // Salvage-mode open: throws only when no checkpoint validates at all.
  ArchiveReader reader(path, 1, {}, OpenMode::kSalvage);
  const SalvageInfo& info = reader.salvage_info();
  report.file_bytes = info.file_bytes;
  report.consistent_bytes = info.consistent_bytes;
  report.salvage_used = info.fallback;
  report.open_detail = info.detail;
  report.fields_indexed = reader.fields().size();

  // Verify every indexed payload against its stored CRC.  The reader
  // validated the INDEX (footer CRC + block bounds); this pass checks the
  // DATA the index points at, which a footer checksum cannot cover.
  PreadFile file(path);
  std::vector<std::uint8_t> buf;
  for (const auto& f : reader.fields()) {
    for (std::size_t i = 0; i < f.blocks.size(); ++i) {
      const auto& b = f.blocks[i];
      buf.resize(static_cast<std::size_t>(b.size));
      file.read_at(b.offset, buf);
      ++report.blocks_scanned;
      const std::uint32_t actual = crc32(buf);
      if (actual != b.crc)
        report.bad_blocks.push_back(
            {f.name, i, b.offset, b.size, b.crc, actual});
    }
  }
  return report;
}

FsckReport fsck_repair(const std::string& path) {
  FsckReport report = fsck_scan(path);
  if (!report.needs_truncate()) return report;

  // Cut the file back to the newest valid checkpoint; the (possibly torn)
  // bytes behind it are exactly what a crashed writer left unsealed.
  std::error_code ec;
  std::filesystem::resize_file(path, report.consistent_bytes, ec);
  if (ec)
    throw std::runtime_error("fsck: cannot truncate " + path + " to " +
                             std::to_string(report.consistent_bytes) +
                             " bytes: " + ec.message());

  // Re-scan so the returned report describes the REPAIRED file — it must
  // now strict-open with no trailing garbage.
  report = fsck_scan(path);
  report.truncated = true;
  if (report.salvage_used || report.needs_truncate())
    throw std::runtime_error(
        "fsck: " + path + " still inconsistent after truncation (" +
        report.open_detail + ")");
  return report;
}

std::string format_fsck_report(const FsckReport& report) {
  std::ostringstream os;
  os << report.path << ": " << report.file_bytes << " bytes, "
     << report.fields_indexed << " field(s), " << report.blocks_scanned
     << " block(s) scanned\n";
  if (report.salvage_used)
    os << "  strict open FAILED (" << report.open_detail
       << "); salvaged checkpoint at byte " << report.consistent_bytes
       << "\n";
  if (report.consistent_bytes != report.file_bytes)
    os << "  " << (report.file_bytes - report.consistent_bytes)
       << " trailing byte(s) beyond the last checkpoint"
       << " (unsealed write; --repair truncates)\n";
  for (const auto& bad : report.bad_blocks) {
    os << "  CORRUPT block " << bad.block << " of field '" << bad.field
       << "' at offset " << bad.offset << " (" << bad.size
       << " bytes): stored crc " << bad.crc_stored << ", actual "
       << bad.crc_actual << " (not repairable; restore from source)\n";
  }
  if (report.truncated)
    os << "  repaired: truncated to " << report.consistent_bytes
       << " bytes\n";
  if (report.clean())
    os << "  clean\n";
  return os.str();
}

}  // namespace sz14::archive
