#include "archive/fsck.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "archive/reader.hpp"
#include "archive/scrub.hpp"
#include "archive/shard.hpp"
#include "common/checksum.hpp"

namespace sz14::archive {
namespace {

/// Shard files on disk named like `manifest.s####` that `indexed` does
/// not cover — the leftovers of a crash between a shard roll and the
/// next manifest checkpoint.
std::vector<std::string> find_orphan_shards(
    const std::string& manifest_path, const std::vector<ShardEntry>& indexed) {
  std::vector<std::string> orphans;
  const std::filesystem::path mp(manifest_path);
  const std::string stem = mp.filename().string() + ".s";
  std::error_code ec;
  const auto dir = mp.parent_path().empty() ? std::filesystem::path(".")
                                            : mp.parent_path();
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < stem.size() + 4 || name.compare(0, stem.size(), stem) ||
        !std::all_of(name.begin() + static_cast<std::ptrdiff_t>(stem.size()),
                     name.end(), [](char c) { return c >= '0' && c <= '9'; }))
      continue;
    if (std::none_of(indexed.begin(), indexed.end(),
                     [&](const ShardEntry& s) { return s.file == name; }))
      orphans.push_back(entry.path().string());
  }
  std::sort(orphans.begin(), orphans.end());
  return orphans;
}

}  // namespace

FsckReport fsck_scan(const std::string& path) {
  FsckReport report;
  report.path = path;

  // Salvage-mode open: throws only when no checkpoint validates at all.
  ArchiveReader reader(path, 1, {}, OpenMode::kSalvage);
  const SalvageInfo& info = reader.salvage_info();
  report.file_bytes = info.file_bytes;
  report.consistent_bytes = info.consistent_bytes;
  report.salvage_used = info.fallback;
  report.open_detail = info.detail;
  report.parity_enabled = reader.parity_enabled();
  report.sharded = reader.sharded();
  report.fields_indexed = reader.fields().size();

  // Sharded: every shard file must end exactly where the checkpoint in
  // use says (header + recorded payload bytes) — anything beyond is a
  // crashed writer's unsealed tail, repairable by truncation.  Shard
  // files the checkpoint does not know at all are orphans.
  const ShardSet& src = reader.source();
  if (reader.sharded()) {
    report.shards_indexed = src.part_count();
    for (std::size_t i = 0; i < src.part_count(); ++i) {
      const auto& p = src.part(i);
      const std::uint64_t keep = p.header + p.size;
      if (p.file_bytes > keep)
        report.shard_trailing.push_back(
            FsckShardIssue{p.path, keep, p.file_bytes - keep});
    }
    report.orphan_shards = find_orphan_shards(path, reader.shards());
  }

  // Verify every indexed payload against its stored CRC.  The reader
  // validated the INDEX (footer CRC + block bounds); this pass checks the
  // DATA the index points at, which a footer checksum cannot cover.
  std::vector<std::uint8_t> buf;
  const auto check = [&](std::uint64_t offset, std::uint64_t size,
                         std::uint32_t crc, std::uint32_t& actual) {
    buf.resize(static_cast<std::size_t>(size));
    src.read_at(offset, buf);
    actual = crc32(buf);
    return actual == crc;
  };
  for (const auto& f : reader.fields()) {
    // Per-group damage tally, so the report can say what parity can heal:
    // one bad member per group (data OR parity) is repairable, two are not.
    std::vector<std::size_t> group_bad(f.parity.size(), 0);
    std::size_t field_unrecoverable = 0;
    for (std::size_t i = 0; i < f.blocks.size(); ++i) {
      const auto& b = f.blocks[i];
      ++report.blocks_scanned;
      std::uint32_t actual = 0;
      if (check(b.offset, b.size, b.crc, actual)) continue;
      report.bad_blocks.push_back(
          {f.name, false, i, b.offset, b.size, b.crc, actual});
      if (f.parity_group == 0)
        ++field_unrecoverable;  // no parity: this data is simply lost
      else
        ++group_bad[i / f.parity_group];
    }
    for (std::size_t g = 0; g < f.parity.size(); ++g) {
      const auto& p = f.parity[g];
      ++report.parity_scanned;
      std::uint32_t actual = 0;
      if (check(p.offset, p.size, p.crc, actual)) continue;
      report.bad_parity.push_back(
          {f.name, true, g, p.offset, p.size, p.crc, actual});
      ++group_bad[g];
    }
    for (const std::size_t bad : group_bad)
      if (bad >= 2) field_unrecoverable += bad;
    report.unrecoverable_payloads += field_unrecoverable;
  }
  return report;
}

FsckReport fsck_repair(const std::string& path) {
  FsckReport report = fsck_scan(path);
  std::size_t blocks_repaired = 0;
  std::size_t parity_rebuilt = 0;
  std::size_t shards_truncated = 0;
  std::size_t orphans_removed = 0;
  bool truncated = false;

  if (report.consistent_bytes != report.file_bytes) {
    // Cut the container/manifest back to the newest valid checkpoint;
    // the (possibly torn) bytes behind it are exactly what a crashed
    // writer left unsealed.
    std::error_code ec;
    std::filesystem::resize_file(path, report.consistent_bytes, ec);
    if (ec)
      throw std::runtime_error("fsck: cannot truncate " + path + " to " +
                               std::to_string(report.consistent_bytes) +
                               " bytes: " + ec.message());
    truncated = true;
  }
  // Per-shard truncation: drop torn payload tails the checkpoint in use
  // never sealed, so every shard ends exactly where its table entry says.
  for (const auto& s : report.shard_trailing) {
    std::error_code ec;
    std::filesystem::resize_file(s.path, s.keep_bytes, ec);
    if (ec)
      throw std::runtime_error("fsck: cannot truncate shard " + s.path +
                               " to " + std::to_string(s.keep_bytes) +
                               " bytes: " + ec.message());
    ++shards_truncated;
  }
  for (const auto& orphan : report.orphan_shards) {
    std::error_code ec;
    std::filesystem::remove(orphan, ec);
    if (ec)
      throw std::runtime_error("fsck: cannot remove orphan shard " + orphan +
                               ": " + ec.message());
    ++orphans_removed;
  }

  // Heal CRC-damaged payloads in place through the shared parity engine
  // (scrub.hpp): reconstruct + rewrite + re-verify, refusing any group
  // with two damaged members.
  if (!report.bad_blocks.empty() || !report.bad_parity.empty()) {
    const HealOutcome healed = heal_damaged_payloads(path);
    blocks_repaired = healed.blocks_repaired;
    parity_rebuilt = healed.parity_rebuilt;
  }

  // Re-scan so the returned report describes the REPAIRED file.
  report = fsck_scan(path);
  report.truncated = truncated;
  report.shards_truncated = shards_truncated;
  report.orphans_removed = orphans_removed;
  report.blocks_repaired = blocks_repaired;
  report.parity_rebuilt = parity_rebuilt;
  if (report.salvage_used || report.needs_truncate())
    throw std::runtime_error(
        "fsck: " + path + " still inconsistent after truncation (" +
        report.open_detail + ")");
  return report;
}

std::string format_fsck_report(const FsckReport& report) {
  std::ostringstream os;
  os << report.path << ": " << report.file_bytes << " bytes, "
     << report.fields_indexed << " field(s), " << report.blocks_scanned
     << " block(s)";
  if (report.sharded)
    os << " across " << report.shards_indexed << " shard(s)";
  if (report.parity_enabled)
    os << " + " << report.parity_scanned << " parity payload(s)";
  os << " scanned\n";
  if (report.salvage_used)
    os << "  strict open FAILED (" << report.open_detail
       << "); salvaged checkpoint at byte " << report.consistent_bytes
       << "\n";
  if (report.consistent_bytes != report.file_bytes)
    os << "  " << (report.file_bytes - report.consistent_bytes)
       << " trailing byte(s) beyond the last checkpoint"
       << " (unsealed write; --repair truncates)\n";
  for (const auto& s : report.shard_trailing)
    os << "  shard " << s.path << ": " << s.trailing
       << " trailing byte(s) beyond the recorded payload"
       << " (unsealed write; --repair truncates)\n";
  for (const auto& orphan : report.orphan_shards)
    os << "  orphan shard " << orphan
       << " not indexed by any checkpoint (--repair removes)\n";
  for (const auto& bad : report.bad_blocks) {
    os << "  CORRUPT block " << bad.block << " of field '" << bad.field
       << "' at offset " << bad.offset << " (" << bad.size
       << " bytes): stored crc " << bad.crc_stored << ", actual "
       << bad.crc_actual
       << (report.parity_enabled
               ? " (--repair heals what parity covers)"
               : " (no parity; not repairable — restore from source)")
       << "\n";
  }
  for (const auto& bad : report.bad_parity) {
    os << "  CORRUPT parity group " << bad.block << " of field '"
       << bad.field << "' at offset " << bad.offset << " (" << bad.size
       << " bytes): stored crc " << bad.crc_stored << ", actual "
       << bad.crc_actual << " (data intact; --repair rebuilds parity)\n";
  }
  if (report.unrecoverable_payloads > 0)
    os << "  UNRECOVERABLE: " << report.unrecoverable_payloads
       << " payload(s) beyond single-parity repair\n";
  if (report.truncated)
    os << "  repaired: truncated to " << report.consistent_bytes
       << " bytes\n";
  if (report.shards_truncated > 0 || report.orphans_removed > 0)
    os << "  repaired: " << report.shards_truncated
       << " shard(s) truncated, " << report.orphans_removed
       << " orphan shard(s) removed\n";
  if (report.blocks_repaired > 0 || report.parity_rebuilt > 0)
    os << "  repaired: " << report.blocks_repaired
       << " data payload(s) healed from parity, " << report.parity_rebuilt
       << " parity payload(s) rebuilt\n";
  if (report.clean())
    os << "  clean\n";
  return os.str();
}

}  // namespace sz14::archive
