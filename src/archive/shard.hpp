// Sharded archive container: one small manifest file (`.szm`) indexing N
// shard files that together hold the payload bytes of what a single-file
// `.sza` would store.  The manifest is the crash-consistency anchor — it
// carries the superblock, a shard table (per-shard payload byte count and
// running CRC-32), the regular field footer, and the same self-delimiting
// checkpoint trailer discipline as the single-file format, so
// salvage-open, fsck and scrub work unchanged in spirit:
//
//   manifest (.szm):
//     [superblock: magic "SZM1" u32 | version u8 | flags u8 | reserved u16]
//     [checkpoint: shard table || field footer]  (appended per field)
//     [trailer: footer_size u64 | crc32 u32 | magic "SZMF" u32]
//     ... newer checkpoints appended behind older ones; the one whose
//     trailer ends at EOF wins, salvage scans backward for "SZMF" ...
//
//   shard table (inside each checkpoint, before the field footer):
//     shard_count varint | per shard: file-name string | payload varint |
//     crc32 u32
//
//   shard file (manifest name + ".s####"):
//     [header: magic "SZS1" u32 | version u8 | pad u8[3] | index u32 |
//      reserved u32]                                            16 bytes
//     [payload bytes ...]
//
// Block index offsets in a sharded archive are LOGICAL: the address space
// is the concatenation of every shard's payload region (header excluded),
// starting at 0 in shard table order.  The writer never splits one payload
// across a shard boundary, so a block always lives in exactly one shard —
// but ShardSet::read_at() supports spanning reads anyway, defensively.
//
// ShardSet is the one payload-access abstraction the reader, parity
// read-repair, fsck and scrub all share: it hides whether the archive is
// a single `.sza` (a degenerate one-part set whose logical offsets ARE
// absolute file offsets) or a manifest + N shards, and whether each part
// is pread- or mmap-backed (FetchMode) — view() hands out zero-copy spans
// when the bytes are mapped, read_at() stages a copy when they are not.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytebuffer.hpp"
#include "common/pread_file.hpp"

namespace sz14::archive {

inline constexpr std::uint32_t kManifestMagic = 0x31'4D'5A'53u;  // "SZM1"
inline constexpr std::uint32_t kManifestFooterMagic =
    0x46'4D'5A'53u;                                              // "SZMF"
inline constexpr std::uint32_t kShardMagic = 0x31'53'5A'53u;     // "SZS1"
inline constexpr std::uint8_t kManifestVersion = 1;
inline constexpr std::uint8_t kShardVersion = 1;
inline constexpr std::size_t kShardHeaderSize = 16;

/// One shard in the manifest's table.  `file` is the shard's file name
/// relative to the manifest's directory (shards move with their manifest);
/// `size` counts payload bytes only (the fixed header is excluded);
/// `crc` is the running CRC-32 of those payload bytes.
struct ShardEntry {
  std::string file;
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
};

/// File name of shard `index` for manifest `manifest_path` (same
/// directory, manifest file name + ".s####").
[[nodiscard]] std::string shard_file_name(const std::string& manifest_path,
                                          std::size_t index);

/// The name as stored in the manifest (no directory component).
[[nodiscard]] std::string shard_table_name(const std::string& manifest_path,
                                           std::size_t index);

void write_manifest_superblock(ByteWriter& out, std::uint8_t flags = 0);

/// Returns the manifest flags byte (same flag space as the single-file
/// superblock — kFlagParity etc).  Throws std::runtime_error on bad
/// magic, unsupported version, or unknown flag bits.
std::uint8_t read_manifest_superblock(ByteReader& in);

void write_shard_header(ByteWriter& out, std::uint32_t index);

/// Validates magic/version and that the stored index equals `expect`.
/// Throws std::runtime_error on any mismatch (a shard renamed into the
/// wrong slot must not be silently served).
void read_shard_header(ByteReader& in, std::uint32_t expect);

void write_shard_table(const std::vector<ShardEntry>& shards,
                       ByteWriter& out);

/// Throws std::runtime_error on malformed input (empty or
/// path-qualified file names, absurd counts).
[[nodiscard]] std::vector<ShardEntry> read_shard_table(ByteReader& in);

/// Payload byte source shared by the reader, parity repair, fsck and
/// scrub: a logical address space over one single-file archive or a
/// manifest's shard files.  Thread-safe for reads after open (the parts
/// are immutable PreadFiles).
class ShardSet {
 public:
  ShardSet() = default;
  ShardSet(ShardSet&&) = default;
  ShardSet& operator=(ShardSet&&) = default;

  /// Degenerate single-file archive: logical offsets are absolute file
  /// offsets (the `.sza` block index already stores absolute offsets).
  void open_single(const std::string& path, FetchMode mode);

  /// Manifest mode: opens every shard named by `shards` relative to
  /// `manifest_path`'s directory, validating each header and that the
  /// file holds at least the recorded payload bytes.  Throws
  /// std::runtime_error when a shard is missing, misnumbered, or shorter
  /// than the checkpoint says — the caller treats that as an invalid
  /// checkpoint and salvages an earlier one.
  void open_shards(const std::string& manifest_path,
                   const std::vector<ShardEntry>& shards, FetchMode mode);

  [[nodiscard]] bool opened() const noexcept { return !parts_.empty(); }
  [[nodiscard]] bool sharded() const noexcept { return sharded_; }

  /// One past the highest addressable logical offset.
  [[nodiscard]] std::uint64_t logical_size() const noexcept {
    return logical_size_;
  }

  /// The FetchMode actually in effect (kPread when an mmap request fell
  /// back; kMmap when every part is mapped).
  [[nodiscard]] FetchMode fetch_mode() const noexcept;

  /// Fill `out` from logical offset `offset`, crossing part boundaries
  /// if needed.  Throws std::runtime_error past logical_size() or on I/O
  /// failure, naming the shard file and offset.
  void read_at(std::uint64_t offset, std::span<std::uint8_t> out) const;

  /// Zero-copy window when [offset, offset+size) is fully inside one
  /// mmap-backed part; empty span otherwise (caller stages via read_at).
  [[nodiscard]] std::span<const std::uint8_t> view(
      std::uint64_t offset, std::uint64_t size) const noexcept;

  /// Readahead hint for a coming block scan over the logical range
  /// (forwarded per-part; no-op for unmapped parts).
  void advise(std::uint64_t offset, std::uint64_t size,
              PreadFile::Advice a) const noexcept;

  /// Where logical offset `offset` lives on disk — for heal rewrites and
  /// error attribution.  Throws std::runtime_error past logical_size().
  struct Location {
    std::size_t part = 0;        ///< part index (0 for single-file)
    std::string path;            ///< file holding the byte
    std::uint64_t offset = 0;    ///< offset within that file
    std::uint64_t available = 0; ///< contiguous bytes in this part from here
  };
  [[nodiscard]] Location locate(std::uint64_t offset) const;

  /// Per-part on-disk facts for fsck/ls/stat.
  struct PartInfo {
    std::string path;              ///< resolved file path
    std::uint64_t logical_start = 0;
    std::uint64_t header = 0;      ///< bytes before the payload region
    std::uint64_t size = 0;        ///< payload bytes per the checkpoint
    std::uint64_t file_bytes = 0;  ///< actual file size at open
    std::uint32_t crc = 0;         ///< checkpoint's running payload CRC
  };
  [[nodiscard]] std::size_t part_count() const noexcept {
    return parts_.size();
  }
  [[nodiscard]] const PartInfo& part(std::size_t i) const {
    return parts_[i].info;
  }

 private:
  struct Part {
    std::unique_ptr<PreadFile> file;
    PartInfo info;
  };
  /// Part containing logical `offset` (parts are sorted by logical_start).
  [[nodiscard]] const Part& part_at(std::uint64_t offset) const;

  std::vector<Part> parts_;
  std::uint64_t logical_size_ = 0;
  bool sharded_ = false;
  FetchMode mode_ = FetchMode::kPread;  ///< requested mode (for empty sets)
};

}  // namespace sz14::archive
