#include "archive/single_flight.hpp"

namespace sz14::archive {

std::pair<std::shared_ptr<SingleFlight::Entry>, bool> SingleFlight::begin(
    std::size_t field, std::size_t block) {
  const Key key{field, block};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = inflight_.find(key);
  if (it != inflight_.end()) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    return {it->second, false};
  }
  auto entry = std::make_shared<Entry>();
  inflight_.emplace(key, entry);
  return {entry, true};
}

void SingleFlight::publish(std::size_t field, std::size_t block, Entry& entry,
                           std::shared_ptr<const void> value,
                           std::exception_ptr error) {
  // Retire the entry FIRST: a thread arriving after this line starts a new
  // flight (and, with the cache enabled, hits the block the leader just
  // inserted — the reader re-probes under leadership).  Threads that
  // joined earlier hold their own shared_ptr to `entry` and wake below.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(Key{field, block});
  }
  {
    std::lock_guard<std::mutex> lock(entry.m);
    entry.value = std::move(value);
    entry.error = std::move(error);
    entry.done = true;
  }
  entry.cv.notify_all();
}

std::shared_ptr<const void> SingleFlight::wait(Entry& entry) {
  std::unique_lock<std::mutex> lock(entry.m);
  entry.cv.wait(lock, [&] { return entry.done; });
  if (entry.error) std::rethrow_exception(entry.error);
  return entry.value;
}

}  // namespace sz14::archive
