// Block-grid arithmetic for the SZA container: a d-dimensional field is
// sharded into a row-major grid of fixed-size blocks (edge blocks clipped
// to the field boundary), and random-access reads decode only the blocks
// whose cuboid intersects the requested hyperslab.
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <span>

#include "common/dims.hpp"

namespace sz14::archive {

/// A d-dimensional hyperslab: `extent[a]` elements starting at `origin[a]`
/// on each axis (slowest axis first, matching Dims).
struct Region {
  std::array<std::size_t, kMaxDims> origin{};
  std::array<std::size_t, kMaxDims> extent{};
  std::size_t rank = 0;

  /// The region covering an entire field.
  static Region whole(const Dims& dims);

  [[nodiscard]] std::size_t count() const noexcept;

  /// Shape of the region as a Dims (extents must be nonzero).
  [[nodiscard]] Dims shape() const;
};

/// Row-major grid of fixed-size blocks over a field.
class BlockGrid {
 public:
  /// Throws std::invalid_argument when ranks differ (Dims itself rejects
  /// zero extents).  Blocks larger than the field are clipped, giving a
  /// single block.
  BlockGrid(const Dims& field, const Dims& block);

  [[nodiscard]] const Dims& field() const noexcept { return field_; }
  [[nodiscard]] const Dims& block() const noexcept { return block_; }

  /// Total number of blocks (= product of blocks_along()).
  [[nodiscard]] std::size_t block_count() const noexcept { return count_; }

  /// ceil(field_extent / block_extent) for one axis.
  [[nodiscard]] std::size_t blocks_along(std::size_t axis) const {
    return grid_[axis];
  }

  /// Field-space origin of block `index` (row-major over the grid).
  void block_origin(std::size_t index, std::span<std::size_t> out) const;

  /// Extents of block `index`, clipped at the field boundary.
  [[nodiscard]] Dims block_extents(std::size_t index) const;

  /// Does block `index` intersect the hyperslab?
  [[nodiscard]] bool intersects(std::size_t index, const Region& r) const;

 private:
  Dims field_;
  Dims block_;
  std::array<std::size_t, kMaxDims> grid_{};
  std::size_t count_ = 1;
};

/// Copy a subcuboid between two row-major arrays: `ext` elements per axis,
/// read from `src` (shaped `src_dims`) starting at `src_origin`, written to
/// `dst` (shaped `dst_dims`) starting at `dst_origin`.  Rows along the
/// fastest axis are memcpy'd.  Bounds are the caller's responsibility.
template <typename T>
void copy_subcuboid(const T* src, const Dims& src_dims,
                    std::span<const std::size_t> src_origin, T* dst,
                    const Dims& dst_dims,
                    std::span<const std::size_t> dst_origin,
                    std::span<const std::size_t> ext) {
  const std::size_t rank = src_dims.rank();
  const std::size_t row = ext[rank - 1];
  std::size_t rows = 1;
  for (std::size_t a = 0; a + 1 < rank; ++a) rows *= ext[a];

  std::array<std::size_t, kMaxDims> coord{};
  for (std::size_t r = 0; r < rows; ++r) {
    // Unravel r over the slow axes of ext.
    std::size_t rem = r;
    for (std::size_t a = rank - 1; a-- > 0;) {
      coord[a] = rem % ext[a];
      rem /= ext[a];
    }
    std::size_t src_off = src_origin[rank - 1];
    std::size_t dst_off = dst_origin[rank - 1];
    for (std::size_t a = 0; a + 1 < rank; ++a) {
      src_off += (src_origin[a] + coord[a]) * src_dims.stride(a);
      dst_off += (dst_origin[a] + coord[a]) * dst_dims.stride(a);
    }
    std::memcpy(dst + dst_off, src + src_off, row * sizeof(T));
  }
}

}  // namespace sz14::archive
