#include "archive/scrub.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <mutex>
#include <span>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "archive/parity.hpp"
#include "archive/reader.hpp"
#include "common/failpoint.hpp"
#include "parallel/thread_pool.hpp"

namespace sz14::archive {
namespace {

/// One payload the scan must verify (data block or parity payload).
struct Target {
  const FieldEntry* field;
  bool parity;
  std::size_t index;
  std::uint64_t offset;
  std::uint64_t size;
  std::uint32_t crc;
};

std::vector<Target> payload_targets(const std::vector<FieldEntry>& fields) {
  std::vector<Target> targets;
  for (const auto& f : fields) {
    for (std::size_t i = 0; i < f.blocks.size(); ++i)
      targets.push_back({&f, false, i, f.blocks[i].offset, f.blocks[i].size,
                         f.blocks[i].crc});
    for (std::size_t g = 0; g < f.parity.size(); ++g)
      targets.push_back({&f, true, g, f.parity[g].offset, f.parity[g].size,
                         f.parity[g].crc});
  }
  return targets;
}

/// In-place payload rewriter over the archive's payload space: resolves
/// logical offsets through the reader's ShardSet (single-file offsets are
/// absolute; sharded offsets land in whichever shard holds them) and
/// keeps one read/write stream per touched file.
class PayloadRewriter {
 public:
  explicit PayloadRewriter(const ShardSet& src) : src_(src) {}

  /// Rewrite one payload.  Failpoint site "archive.scrub.rewrite":
  /// error/enospc throw inside trigger(); drop swallows the write (the
  /// caller's re-verify then reports the payload still damaged);
  /// short/torn put a prefix on disk and throw — a heal interrupted
  /// mid-rewrite, which the next scrub finds and finishes (the rewrite
  /// is idempotent).
  void rewrite(std::uint64_t logical, std::span<const std::uint8_t> data) {
    if (const auto f = fail::trigger("archive.scrub.rewrite")) {
      if (f->kind == fail::Kind::kDrop) return;
      const std::size_t part = std::min<std::size_t>(
          data.size(), f->arg > 0 ? static_cast<std::size_t>(f->arg) : 0);
      write_range(logical, data.first(part));
      throw std::runtime_error("scrub: torn rewrite at offset " +
                               std::to_string(logical + part) +
                               " (failpoint)");
    }
    write_range(logical, data);
  }

 private:
  /// Write `data` at logical `offset`, crossing shard boundaries if a
  /// payload ever spans one (the writer never splits payloads, but the
  /// heal path must not silently corrupt if an index says otherwise).
  void write_range(std::uint64_t offset, std::span<const std::uint8_t> data) {
    std::size_t done = 0;
    while (done < data.size()) {
      const ShardSet::Location loc = src_.locate(offset + done);
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(loc.available, data.size() - done));
      std::fstream& rw = stream_for(loc.path);
      rw.seekp(static_cast<std::streamoff>(loc.offset));
      rw.write(reinterpret_cast<const char*>(data.data() + done),
               static_cast<std::streamsize>(take));
      rw.flush();
      if (!rw)
        throw std::runtime_error(
            "scrub: rewrite of " + std::to_string(take) +
            " bytes at offset " + std::to_string(loc.offset) + " failed in " +
            loc.path);
      done += take;
    }
  }

  std::fstream& stream_for(const std::string& path) {
    auto it = streams_.find(path);
    if (it == streams_.end()) {
      it = streams_
               .emplace(path,
                        std::fstream(path, std::ios::in | std::ios::out |
                                               std::ios::binary))
               .first;
      if (!it->second)
        throw std::runtime_error("scrub: cannot open for rewrite: " + path);
    }
    return it->second;
  }

  const ShardSet& src_;
  std::map<std::string, std::fstream> streams_;
};

}  // namespace

HealOutcome heal_damaged_payloads(const std::string& path) {
  HealOutcome out;
  ArchiveReader reader(path, 1, {}, OpenMode::kSalvage);
  // Heals read back through the same source they write through: a
  // logical offset resolves to (shard file, local offset) for sharded
  // archives and to the absolute offset for single-file ones.
  const ShardSet& file = reader.source();
  PayloadRewriter rw(file);

  for (const auto& f : reader.fields()) {
    if (f.parity_group == 0) {
      // No parity: every damaged block is simply lost data.
      for (const auto& b : f.blocks)
        if (!verify_payload(file, b.offset, b.size, b.crc))
          ++out.unrecoverable;
      continue;
    }
    for (std::size_t g = 0; g < f.parity.size(); ++g) {
      const std::size_t lo = g * f.parity_group;
      const std::size_t hi =
          std::min<std::size_t>(lo + f.parity_group, f.blocks.size());
      std::vector<std::size_t> bad;
      for (std::size_t i = lo; i < hi; ++i)
        if (!verify_payload(file, f.blocks[i].offset, f.blocks[i].size,
                            f.blocks[i].crc))
          bad.push_back(i);
      const bool parity_ok = verify_payload(file, f.parity[g].offset,
                                            f.parity[g].size, f.parity[g].crc);
      if (bad.empty() && parity_ok) continue;

      if (bad.empty()) {
        // Parity-only damage: no data is at risk; rebuild the parity from
        // the (just verified) data members so the group is protected again.
        if (const auto p = recompute_group_parity(file, f, g)) {
          rw.rewrite(f.parity[g].offset, *p);
          if (verify_payload(file, f.parity[g].offset, f.parity[g].size,
                             f.parity[g].crc))
            ++out.parity_rebuilt;
          else
            ++out.unrecoverable;
        } else {
          ++out.unrecoverable;
        }
        continue;
      }
      if (bad.size() == 1 && parity_ok) {
        // The single-erasure case parity exists for: reconstruct, rewrite,
        // and trust nothing until the on-disk bytes re-verify.
        if (const auto payload =
                reconstruct_block_payload(file, f, bad[0])) {
          const BlockEntry& b = f.blocks[bad[0]];
          rw.rewrite(b.offset, *payload);
          if (verify_payload(file, b.offset, b.size, b.crc))
            ++out.blocks_repaired;
          else
            ++out.unrecoverable;
        } else {
          ++out.unrecoverable;
        }
        continue;
      }
      // Two or more damaged members in one group: single parity cannot
      // tell the unknowns apart.  Leave everything untouched — a wrong
      // rewrite would destroy the evidence a stronger recovery could use.
      out.unrecoverable += bad.size() + (parity_ok ? 0 : 1);
    }
  }
  return out;
}

ScrubReport scrub_archive(const std::string& path, bool repair,
                          std::size_t threads) {
  ScrubReport report;
  report.path = path;

  ArchiveReader reader(path, 1, {}, OpenMode::kSalvage);
  report.parity_enabled = reader.parity_enabled();
  report.fields_scanned = reader.fields().size();

  const ShardSet& file = reader.source();
  const std::vector<Target> targets = payload_targets(reader.fields());
  for (const auto& t : targets)
    t.parity ? ++report.parity_scanned : ++report.blocks_scanned;

  // Pool-parallel verify: each payload is one independent pread+crc task.
  std::mutex issue_mutex;
  std::vector<std::size_t> issue_targets;  // parallel to report.issues
  ThreadPool pool(threads);
  pool.run_batch(targets.size(), [&](std::size_t k) {
    const Target& t = targets[k];
    if (verify_payload(file, t.offset, t.size, t.crc)) return;
    const std::lock_guard<std::mutex> lk(issue_mutex);
    report.issues.push_back(ScrubIssue{t.field->name, t.parity, t.index,
                                       t.offset, t.size, false,
                                       "crc mismatch"});
    issue_targets.push_back(k);
  });

  // Classify repairability the way fsck does: per parity group, count
  // damaged members (the parity payload counts as one); two or more in a
  // group — or any damage in a parity-less field — is beyond single parity.
  std::map<std::pair<const FieldEntry*, std::size_t>, std::size_t> group_bad;
  for (const std::size_t k : issue_targets) {
    const Target& t = targets[k];
    if (t.field->parity_group == 0) {
      ++report.unrecoverable_payloads;
      continue;
    }
    const std::size_t g = t.parity ? t.index : t.index / t.field->parity_group;
    ++group_bad[{t.field, g}];
  }
  for (const auto& [group, n] : group_bad)
    if (n >= 2) report.unrecoverable_payloads += n;

  if (repair && !report.issues.empty()) {
    report.repair_attempted = true;
    const HealOutcome healed = heal_damaged_payloads(path);
    report.blocks_repaired = healed.blocks_repaired;
    report.parity_rebuilt = healed.parity_rebuilt;
    // Re-verify each damaged payload so the report describes the on-disk
    // RESULT, not the heal's intent.
    for (std::size_t j = 0; j < report.issues.size(); ++j) {
      const Target& t = targets[issue_targets[j]];
      if (verify_payload(file, t.offset, t.size, t.crc)) {
        report.issues[j].repaired = true;
        report.issues[j].detail.clear();
      } else {
        report.issues[j].detail =
            "beyond single-parity repair (second damaged member in the "
            "group, or no parity)";
      }
    }
  }

  std::sort(report.issues.begin(), report.issues.end(),
            [](const ScrubIssue& a, const ScrubIssue& b) {
              return std::tie(a.field, a.parity, a.index) <
                     std::tie(b.field, b.parity, b.index);
            });
  return report;
}

std::string format_scrub_report(const ScrubReport& report) {
  std::ostringstream os;
  os << report.path << ": " << report.fields_scanned << " field(s), "
     << report.blocks_scanned << " data payload(s), " << report.parity_scanned
     << " parity payload(s) scanned";
  if (!report.parity_enabled) os << " (archive has no parity)";
  os << "\n";
  for (const auto& i : report.issues) {
    os << "  " << (i.repaired ? "REPAIRED" : "DAMAGED") << " "
       << (i.parity ? "parity group " : "block ") << i.index << " of field '"
       << i.field << "' at offset " << i.offset << " (" << i.size
       << " bytes)";
    if (!i.detail.empty()) os << ": " << i.detail;
    os << "\n";
  }
  if (report.repair_attempted)
    os << "  healed: " << report.blocks_repaired << " data payload(s), "
       << report.parity_rebuilt << " parity payload(s) rebuilt\n";
  else if (!report.issues.empty())
    os << "  " << report.issues.size() << " damaged payload(s) found"
       << (report.repairable()
               ? " — all within single-parity reach (rerun with --repair)"
               : " (--repair heals what parity covers)")
       << "\n";
  if (report.unrecoverable() > 0)
    os << "  UNRECOVERABLE: " << report.unrecoverable()
       << " payload(s) beyond single-parity repair\n";
  if (report.clean()) os << "  clean\n";
  return os.str();
}

}  // namespace sz14::archive
