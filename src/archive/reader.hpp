// SZA archive reader: validates the footer index (trailer magic + CRC-32)
// at open, then serves O(blocks-touched) random access — read_region()
// seeks to, checksums, and decodes ONLY the blocks whose cuboid intersects
// the requested hyperslab.  Block payload reads are sequential (one shared
// file handle); decoding and scattering run in parallel on a thread pool.
//
// `blocks_decoded()` counts every block decode since construction (or the
// last reset), which is how tests and benches verify that a region read
// really touched only the intersecting blocks.
#pragma once

#include <atomic>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "archive/archive_format.hpp"
#include "archive/blocking.hpp"
#include "parallel/thread_pool.hpp"

namespace sz14::archive {

class ArchiveReader {
 public:
  /// Opens and indexes `path`.  Throws std::runtime_error on bad magic,
  /// truncated trailer, footer checksum mismatch, or malformed index.
  /// `threads == 0` selects hardware_concurrency() for block decoding.
  explicit ArchiveReader(const std::string& path, std::size_t threads = 0);

  ArchiveReader(const ArchiveReader&) = delete;
  ArchiveReader& operator=(const ArchiveReader&) = delete;

  [[nodiscard]] const std::vector<FieldEntry>& fields() const noexcept {
    return fields_;
  }

  /// Throws std::invalid_argument when no field has this name.
  [[nodiscard]] const FieldEntry& field(std::string_view name) const;

  /// Decode an entire f32 field (all blocks).
  [[nodiscard]] std::vector<float> read_field(std::string_view name);

  /// Decode only the blocks intersecting `region`; returns the hyperslab
  /// row-major, shaped region.extent.  Throws std::invalid_argument when
  /// the region's rank mismatches, has a zero extent, or exceeds the field
  /// bounds; std::runtime_error on checksum/decode failure.
  [[nodiscard]] std::vector<float> read_region(std::string_view name,
                                               const Region& region);

  /// Double-precision variants for f64 fields.
  [[nodiscard]] std::vector<double> read_field64(std::string_view name);
  [[nodiscard]] std::vector<double> read_region64(std::string_view name,
                                                  const Region& region);

  /// Blocks decoded since construction or reset_counters().
  [[nodiscard]] std::uint64_t blocks_decoded() const noexcept {
    return blocks_decoded_.load(std::memory_order_relaxed);
  }

  void reset_counters() noexcept {
    blocks_decoded_.store(0, std::memory_order_relaxed);
  }

 private:
  template <typename T>
  std::vector<T> read_region_impl(std::string_view name, const Region& region);

  std::vector<std::uint8_t> read_payload(const BlockEntry& b,
                                         const std::string& field_name,
                                         std::size_t block_index);

  std::string path_;
  std::size_t threads_;
  std::ifstream in_;
  std::uint64_t file_size_ = 0;
  std::vector<FieldEntry> fields_;
  std::unique_ptr<ThreadPool> pool_;  // created lazily on the first read
  std::atomic<std::uint64_t> blocks_decoded_{0};
};

}  // namespace sz14::archive
