// SZA archive reader, built as a concurrent serving component: validates
// the footer index (trailer magic + CRC-32) at open, then serves
// O(blocks-touched) random access from ANY number of threads sharing one
// reader.  All state mutated after construction is synchronized — block
// payload reads are positional (pread, no shared cursor), the decode pool
// is once-initialized, scratch buffers are per-thread arena slots, and the
// optional decoded-block cache is an internally locked LRU — so
// read_region()/read_field() are const and data-race-free.
//
// Each intersecting block is served as ONE pool task that preads its
// payload, checksums, decodes, and scatters — so block i's I/O overlaps
// block j's decompression instead of an all-payloads-first barrier.
//
// `blocks_decoded()` counts every block decode since construction (or the
// last reset), which is how tests and benches verify that a region read
// really touched only the intersecting blocks — and, with the cache
// enabled, that hot repeats decoded nothing at all.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "archive/archive_format.hpp"
#include "archive/block_cache.hpp"
#include "archive/blocking.hpp"
#include "archive/shard.hpp"
#include "archive/single_flight.hpp"
#include "common/exec_policy.hpp"
#include "common/pread_file.hpp"
#include "parallel/thread_pool.hpp"

namespace sz14::archive {

/// How strictly ArchiveReader treats a damaged container.
enum class OpenMode : std::uint8_t {
  /// The trailer must sit exactly at EOF and validate — any truncation or
  /// trailing garbage is rejected (the pre-salvage behavior; the right
  /// mode when serving data that must be known-complete).
  kStrict,
  /// If the strict open fails, scan backwards for the most recent valid
  /// footer checkpoint (crash-consistent writers emit one per field) and
  /// serve the fields it covers; salvage_info() reports what happened.
  /// Only an archive with no valid checkpoint at all still throws.
  kSalvage,
  /// kSalvage's open semantics, plus degraded READS: a block that fails
  /// its CRC and cannot be read-repaired from parity no longer throws —
  /// the plain read calls zero-fill it (degraded_reads() counts the
  /// affected reads), and the ReadDamage& overloads report exactly which
  /// blocks are holes.  The mode for serving what survives of a damaged
  /// archive while it is being repaired.
  kDegraded,
};

/// What a salvage-mode open found (also the basis of `archive fsck`).
struct SalvageInfo {
  bool fallback = false;  ///< true: an earlier checkpoint was used
  std::uint64_t file_bytes = 0;        ///< on-disk size at open
  std::uint64_t consistent_bytes = 0;  ///< end of the checkpoint in use
  std::string detail;  ///< why the strict open failed (empty when clean)
};

/// One unrecoverable block in a damaged read: its region of the output
/// was zero-filled because the payload failed its CRC and parity could
/// not reconstruct it (no parity, or a second damaged member in the
/// group).
struct BlockHole {
  std::string field;         ///< field name
  std::size_t block = 0;     ///< block index within the field
  std::uint64_t offset = 0;  ///< absolute file offset of the payload
  std::string detail;        ///< why reconstruction failed
};

/// Typed per-call damage report filled by the ReadDamage& read overloads.
/// `repaired` counts blocks this call transparently reconstructed from
/// parity (their data is exact — not holes); `holes` lists the blocks
/// that stayed unrecoverable and were zero-filled.  Reusable across
/// calls: each call appends.
struct ReadDamage {
  std::uint64_t repaired = 0;
  std::vector<BlockHole> holes;
  [[nodiscard]] bool clean() const noexcept { return holes.empty(); }
};

/// Thrown by the strict read paths when a block payload fails its CRC and
/// cannot be reconstructed from its parity group.  Carries the field and
/// block so callers (e.g. the degraded-serving layer) can report the
/// exact hole.
class BlockDamagedError : public std::runtime_error {
 public:
  BlockDamagedError(std::string field, std::size_t block, std::string detail)
      : std::runtime_error("archive: block " + std::to_string(block) +
                           " of field '" + field +
                           "' is damaged and unrecoverable: " + detail),
        field_(std::move(field)),
        block_(block),
        detail_(std::move(detail)) {}
  [[nodiscard]] const std::string& field_name() const noexcept {
    return field_;
  }
  [[nodiscard]] std::size_t block() const noexcept { return block_; }
  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

 private:
  std::string field_;
  std::size_t block_;
  std::string detail_;
};

class ArchiveReader {
 public:
  /// Opens and indexes `path`.  In OpenMode::kStrict (the default) throws
  /// std::runtime_error on bad magic, truncated trailer, footer checksum
  /// mismatch, or malformed index; OpenMode::kSalvage falls back to the
  /// last valid checkpoint instead (see above).
  ///
  /// `policy` is the reader's per-call execution strategy, applied to every
  /// read: `policy.mode` selects the decode hot path (decoded values are
  /// identical in every mode), `policy.pool` supplies the block-serving
  /// pool (null: the reader lazily owns a private pool of `threads`
  /// workers, falling back to `policy.threads` when the ctor argument is
  /// 0; both 0 selects hardware_concurrency()).  `policy.scratch` is
  /// ignored — the reader keeps its own arena so repeated reads are
  /// allocation-free per block regardless of caller discipline; its slots
  /// belong to the pool's bounded worker set (decodes never run on caller
  /// threads), so serving an unbounded stream of short-lived threads
  /// cannot grow reader state.
  /// `fetch` selects the payload I/O path: FetchMode::kPread (default)
  /// stages every payload through a scratch buffer; FetchMode::kMmap maps
  /// the payload files and decodes straight from the mapping (zero-copy),
  /// transparently falling back to pread when mapping is unavailable.
  /// Decoded values are bit-identical in both modes.
  ///
  /// `path` may name a single-file `.sza` archive or an `.szm` manifest
  /// (sniffed from the superblock magic); sharded archives resolve
  /// (field, block) → (shard, offset) transparently behind the same API.
  explicit ArchiveReader(const std::string& path, std::size_t threads = 0,
                         ExecPolicy policy = {},
                         OpenMode mode = OpenMode::kStrict,
                         FetchMode fetch = FetchMode::kPread);

  ArchiveReader(const ArchiveReader&) = delete;
  ArchiveReader& operator=(const ArchiveReader&) = delete;

  /// How this reader was opened: salvage_info().fallback is true when an
  /// earlier checkpoint (not the bytes at EOF) is serving the index.
  [[nodiscard]] const SalvageInfo& salvage_info() const noexcept {
    return salvage_;
  }

  [[nodiscard]] const std::vector<FieldEntry>& fields() const noexcept {
    return fields_;
  }

  /// True when the superblock carries kFlagParity (the footer indexes
  /// per-group parity payloads and read-repair is possible).
  [[nodiscard]] bool parity_enabled() const noexcept {
    return (flags_ & kFlagParity) != 0;
  }

  /// True when `path` is an `.szm` manifest fronting shard files.
  [[nodiscard]] bool sharded() const noexcept { return manifest_; }

  /// Shard table of the checkpoint in use (empty for single-file).
  [[nodiscard]] const std::vector<ShardEntry>& shards() const noexcept {
    return shards_;
  }

  /// The payload byte source (single-file or shards, pread or mmap) —
  /// parity repair, fsck and scrub read through this.
  [[nodiscard]] const ShardSet& source() const noexcept { return source_; }

  /// FetchMode actually serving payloads (kPread after an mmap fallback).
  [[nodiscard]] FetchMode fetch_mode() const noexcept {
    return source_.fetch_mode();
  }

  /// O(1) name lookup (index built at open).  Throws std::invalid_argument
  /// when no field has this name.
  [[nodiscard]] const FieldEntry& field(std::string_view name) const;

  /// Position of `name` in fields(); same lookup/throw as field().
  [[nodiscard]] std::size_t field_index(std::string_view name) const;

  /// Decode an entire f32 field (all blocks).  Thread-safe.
  [[nodiscard]] std::vector<float> read_field(std::string_view name) const;

  /// Decode only the blocks intersecting `region`; returns the hyperslab
  /// row-major, shaped region.extent.  Throws std::invalid_argument when
  /// the region's rank mismatches, has a zero extent, or exceeds the field
  /// bounds; std::runtime_error on checksum/decode failure.  Thread-safe:
  /// any number of threads may call concurrently on one reader, with
  /// results bit-identical to sequential calls.
  [[nodiscard]] std::vector<float> read_region(std::string_view name,
                                               const Region& region) const;

  /// Double-precision variants for f64 fields.
  [[nodiscard]] std::vector<double> read_field64(std::string_view name) const;
  [[nodiscard]] std::vector<double> read_region64(std::string_view name,
                                                  const Region& region) const;

  /// Damage-reporting variants: never throw on a damaged BLOCK (index and
  /// argument errors still throw).  A CRC-failed block is transparently
  /// reconstructed from parity when possible (damage.repaired counts it;
  /// data is exact); an unrecoverable block is zero-filled in the output
  /// and appended to damage.holes.  Available in every OpenMode.
  [[nodiscard]] std::vector<float> read_region(std::string_view name,
                                               const Region& region,
                                               ReadDamage& damage) const;
  [[nodiscard]] std::vector<float> read_field(std::string_view name,
                                              ReadDamage& damage) const;
  [[nodiscard]] std::vector<double> read_region64(std::string_view name,
                                                  const Region& region,
                                                  ReadDamage& damage) const;
  [[nodiscard]] std::vector<double> read_field64(std::string_view name,
                                                 ReadDamage& damage) const;

  /// Opt into the decoded-block LRU cache with a byte budget (decoded
  /// size); 0 (the default) disables it.  Safe to call at any time, also
  /// while reads are in flight.
  void set_cache_capacity(std::size_t bytes) { cache_.set_capacity(bytes); }

  [[nodiscard]] std::uint64_t cache_hits() const noexcept {
    return cache_.hits();
  }
  [[nodiscard]] std::uint64_t cache_misses() const noexcept {
    return cache_.misses();
  }
  [[nodiscard]] std::uint64_t cache_evictions() const noexcept {
    return cache_.evictions();
  }
  [[nodiscard]] std::size_t cache_resident_bytes() const noexcept {
    return cache_.resident_bytes();
  }
  [[nodiscard]] std::size_t cache_capacity() const noexcept {
    return cache_.capacity();
  }

  /// Opt into single-flight request coalescing: concurrent decodes of the
  /// same (field, block) share ONE pread+CRC+decode instead of N (the
  /// serving daemon's hot-burst path).  With the cache also enabled, a
  /// cold concurrent burst decodes each block exactly once — the winner
  /// re-probes the cache after taking leadership, closing the probe/join
  /// race.  Safe to toggle at any time; defaults to off so single-client
  /// workloads pay nothing.
  void set_coalescing(bool on) noexcept {
    coalesce_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool coalescing() const noexcept {
    return coalesce_.load(std::memory_order_relaxed);
  }

  /// Reads served by piggybacking on another thread's in-flight decode of
  /// the same block (since construction or reset_counters()).
  [[nodiscard]] std::uint64_t coalesced_reads() const noexcept {
    return flight_.coalesced();
  }

  /// Blocks decoded since construction or reset_counters() (cache hits
  /// decode nothing and do not count).
  [[nodiscard]] std::uint64_t blocks_decoded() const noexcept {
    return blocks_decoded_.load(std::memory_order_relaxed);
  }

  /// Block payloads that failed their stored CRC-32 at decode time (each
  /// is then either read-repaired or reported unrecoverable).
  [[nodiscard]] std::uint64_t crc_failures() const noexcept {
    return crc_failures_.load(std::memory_order_relaxed);
  }

  /// CRC-failed blocks transparently reconstructed from their parity
  /// group (the returned data is exact, verified against the stored CRC).
  [[nodiscard]] std::uint64_t read_repairs() const noexcept {
    return read_repairs_.load(std::memory_order_relaxed);
  }

  /// CRC-failed blocks that could NOT be reconstructed (no parity, or a
  /// second damaged member in the group).
  [[nodiscard]] std::uint64_t unrecoverable_blocks() const noexcept {
    return unrecoverable_blocks_.load(std::memory_order_relaxed);
  }

  /// Read calls that completed with at least one zero-filled hole
  /// (degraded mode or the ReadDamage& overloads).
  [[nodiscard]] std::uint64_t degraded_reads() const noexcept {
    return degraded_reads_.load(std::memory_order_relaxed);
  }

  /// Zero blocks_decoded(), coalesced_reads(), the damage counters and
  /// the cache hit/miss/eviction counters (cached DATA stays resident —
  /// only the statistics reset).
  void reset_counters() noexcept {
    blocks_decoded_.store(0, std::memory_order_relaxed);
    crc_failures_.store(0, std::memory_order_relaxed);
    read_repairs_.store(0, std::memory_order_relaxed);
    unrecoverable_blocks_.store(0, std::memory_order_relaxed);
    degraded_reads_.store(0, std::memory_order_relaxed);
    cache_.reset_stats();
    flight_.reset_stats();
  }

 private:
  template <typename T>
  std::vector<T> read_region_impl(std::string_view name, const Region& region,
                                  ReadDamage* damage) const;

  /// pread + CRC + decode of one block (cache not consulted here).  A
  /// CRC failure attempts parity reconstruction; on success `*repairs`
  /// (when non-null) is bumped and the exact data is returned, otherwise
  /// BlockDamagedError is thrown.
  template <typename T>
  std::vector<T> decode_block(const FieldEntry& f, std::size_t block_index,
                              const ExecPolicy& exec,
                              std::atomic<std::uint64_t>* repairs) const;

  /// The serving pool, built race-free on first use (metadata-only
  /// consumers — e.g. `archive ls` — never pay for one).
  ThreadPool& serving_pool() const;

  /// Validate a trailer+footer whose trailer ends at `end`; on success
  /// populates fields_/index_ (and, for a manifest, shards_ + source_)
  /// and returns empty, otherwise returns the failure reason.
  [[nodiscard]] std::string try_open_at(std::uint64_t end);

  PreadFile file_;  // the container/manifest file (index reads, pread)
  ShardSet source_;  // payload reads (single or sharded, per fetch_)
  std::size_t threads_;
  ExecPolicy policy_;
  OpenMode mode_ = OpenMode::kStrict;
  FetchMode fetch_ = FetchMode::kPread;
  bool manifest_ = false;   // path is an .szm manifest
  std::vector<ShardEntry> shards_;  // manifest shard table in use
  std::uint8_t flags_ = 0;  // superblock flags (kFlagParity gates parity)
  SalvageInfo salvage_;
  std::vector<FieldEntry> fields_;

  // Heterogeneous lookup so field("name") takes no std::string detour.
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, std::size_t, NameHash, std::equal_to<>>
      index_;

  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<ThreadPool> owned_pool_;
  mutable ThreadPool* pool_ = nullptr;  // owned_pool_ or the policy borrow
  mutable CodecScratch scratch_;        // per-thread slots, reused per read
  mutable BlockCache cache_;
  mutable SingleFlight flight_;
  std::atomic<bool> coalesce_{false};
  mutable std::atomic<std::uint64_t> blocks_decoded_{0};
  mutable std::atomic<std::uint64_t> crc_failures_{0};
  mutable std::atomic<std::uint64_t> read_repairs_{0};
  mutable std::atomic<std::uint64_t> unrecoverable_blocks_{0};
  mutable std::atomic<std::uint64_t> degraded_reads_{0};
};

}  // namespace sz14::archive
