// Online integrity scrub for SZA archives, the library behind
// `sz14 archive scrub [--repair]` and the serving daemon's background
// scrub task.
//
// scrub_archive() opens the archive in salvage mode, then verifies EVERY
// indexed payload — data blocks and parity payloads — against its stored
// CRC-32, pool-parallel (each payload is an independent pread+crc task).
// With `repair`, damaged payloads are healed in place through the shared
// heal engine below and re-verified, so a scrub that reports
// fully_repaired() really left a bit-identical archive on disk.
//
// The heal engine (heal_damaged_payloads) is shared with
// `fsck --repair`: it groups damage by parity group and rewrites what
// single parity can reconstruct — a damaged DATA block from the group's
// parity + intact members, a damaged PARITY payload recomputed from its
// intact data members.  Two damaged members in one group are reported
// unrecoverable and left untouched (the reconstruction math refuses
// rather than mis-repairs).  Every rewrite passes the failpoint site
// "archive.scrub.rewrite" first, so tests and drills can inject mid-heal
// failures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sz14::archive {

/// One CRC-damaged payload found by the scrub scan.
struct ScrubIssue {
  std::string field;
  bool parity = false;    ///< true: a parity payload (index = group index)
  std::size_t index = 0;  ///< block index, or parity-group index
  std::uint64_t offset = 0;  ///< absolute payload offset
  std::uint64_t size = 0;    ///< payload bytes
  bool repaired = false;  ///< heal rewrote this payload and it re-verified
  std::string detail;     ///< why it stayed unrepaired (empty if repaired)
};

struct ScrubReport {
  std::string path;
  bool parity_enabled = false;  ///< superblock carries kFlagParity
  bool repair_attempted = false;
  std::size_t fields_scanned = 0;
  std::size_t blocks_scanned = 0;  ///< data payloads verified
  std::size_t parity_scanned = 0;  ///< parity payloads verified
  std::size_t blocks_repaired = 0;  ///< data payloads healed from parity
  std::size_t parity_rebuilt = 0;   ///< parity payloads recomputed
  /// Scan-time classification: damaged payloads single parity cannot heal
  /// (two bad members in one group, or a parity-less field).
  std::size_t unrecoverable_payloads = 0;
  std::vector<ScrubIssue> issues;

  /// No damage found at all.
  [[nodiscard]] bool clean() const noexcept { return issues.empty(); }
  /// Damage that heal could not (or was not asked to) fix.  After a
  /// repair pass this is re-verify ground truth; on a plain scan it is
  /// the scan-time classification.
  [[nodiscard]] std::size_t unrecoverable() const noexcept {
    if (!repair_attempted) return unrecoverable_payloads;
    std::size_t n = 0;
    for (const auto& i : issues)
      if (!i.repaired) ++n;
    return n;
  }
  /// Damage exists and ALL of it is within single-parity reach — a
  /// `--repair` rerun would leave the archive clean.
  [[nodiscard]] bool repairable() const noexcept {
    return !clean() && unrecoverable() == 0;
  }
  /// Damage was found and every instance of it was healed + re-verified.
  [[nodiscard]] bool fully_repaired() const noexcept {
    return repair_attempted && !issues.empty() && unrecoverable() == 0;
  }
};

/// Outcome of one heal pass (shared by scrub --repair and fsck --repair).
struct HealOutcome {
  std::size_t blocks_repaired = 0;  ///< data payloads rewritten + verified
  std::size_t parity_rebuilt = 0;   ///< parity payloads rewritten + verified
  std::size_t unrecoverable = 0;    ///< damaged payloads left untouched
};

/// Verify every indexed payload of `path`; with `repair`, heal what
/// single parity can reconstruct.  `threads` sizes the verify pool (0 =
/// hardware_concurrency); the heal pass itself is sequential.  Throws
/// std::runtime_error when the archive has no valid checkpoint at all or
/// a heal rewrite fails (including injected failures).
[[nodiscard]] ScrubReport scrub_archive(const std::string& path, bool repair,
                                        std::size_t threads = 0);

/// In-place heal pass: rewrite every CRC-damaged payload that the parity
/// scheme can reconstruct, re-verifying each rewrite.  Archives without
/// parity get every damaged block counted unrecoverable.
HealOutcome heal_damaged_payloads(const std::string& path);

/// Render a report as the multi-line text `sz14 archive scrub` prints.
[[nodiscard]] std::string format_scrub_report(const ScrubReport& report);

}  // namespace sz14::archive
