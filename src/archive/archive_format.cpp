#include "archive/archive_format.hpp"

#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "archive/blocking.hpp"
#include "archive/codec.hpp"
#include "core/format.hpp"

namespace sz14::archive {

void write_superblock(ByteWriter& out, std::uint8_t flags) {
  out.put<std::uint32_t>(kArchiveMagic);
  out.put<std::uint8_t>(kArchiveVersion);
  out.put<std::uint8_t>(flags);
  out.put<std::uint16_t>(0);  // reserved
}

std::uint8_t read_superblock(ByteReader& in) {
  if (in.get<std::uint32_t>() != kArchiveMagic)
    throw std::runtime_error("archive: bad magic (not an SZA container)");
  const auto version = in.get<std::uint8_t>();
  if (version != kArchiveVersion)
    throw std::runtime_error("archive: unsupported container version " +
                             std::to_string(version));
  const auto flags = in.get<std::uint8_t>();
  if (flags & ~kFlagParity)
    throw std::runtime_error("archive: unknown superblock flags " +
                             std::to_string(flags));
  (void)in.get<std::uint16_t>();  // reserved
  return flags;
}

void write_footer(const std::vector<FieldEntry>& fields, ByteWriter& out,
                  std::uint8_t flags) {
  out.put_varint(fields.size());
  for (const auto& f : fields) {
    out.put_string(f.name);
    out.put<std::uint8_t>(f.dtype);
    out.put<std::uint8_t>(f.codec);
    out.put<double>(f.eb_abs);
    write_dims(f.dims, out);
    write_dims(f.block_dims, out);
    out.put_varint(f.blocks.size());
    for (const auto& b : f.blocks) {
      out.put_varint(b.offset);
      out.put_varint(b.size);
      out.put<std::uint32_t>(b.crc);
      out.put<double>(b.min);
      out.put<double>(b.max);
    }
    // The parity section exists ONLY under the superblock flag so that
    // parity-off archives stay byte-identical to the pre-parity format.
    if (flags & kFlagParity) {
      out.put_varint(f.parity_group);
      if (f.parity_group > 0) {
        for (const auto& p : f.parity) {
          out.put_varint(p.offset);
          out.put_varint(p.size);
          out.put<std::uint32_t>(p.crc);
        }
      }
    }
  }
}

std::vector<FieldEntry> read_footer(ByteReader& in, std::uint8_t flags) {
  const auto n_fields = static_cast<std::size_t>(in.get_varint());
  std::vector<FieldEntry> fields;
  fields.reserve(n_fields);
  std::unordered_set<std::string> seen;
  for (std::size_t i = 0; i < n_fields; ++i) {
    FieldEntry f;
    f.name = in.get_string();
    if (f.name.empty())
      throw std::runtime_error("archive: empty field name in footer");
    if (!seen.insert(f.name).second)
      throw std::runtime_error("archive: duplicate field name: " + f.name);
    f.dtype = in.get<std::uint8_t>();
    if (f.dtype != kDtypeF32 && f.dtype != kDtypeF64)
      throw std::runtime_error("archive: unsupported dtype " +
                               std::to_string(f.dtype));
    f.codec = in.get<std::uint8_t>();
    if (codec_by_id(f.codec) == nullptr)
      throw std::runtime_error("archive: unknown codec id " +
                               std::to_string(f.codec));
    f.eb_abs = in.get<double>();
    f.dims = read_dims(in);
    f.block_dims = read_dims(in);
    if (f.block_dims.rank() != f.dims.rank())
      throw std::runtime_error("archive: block rank mismatch for field '" +
                               f.name + "'");
    const BlockGrid grid(f.dims, f.block_dims);
    const auto n_blocks = static_cast<std::size_t>(in.get_varint());
    if (n_blocks != grid.block_count())
      throw std::runtime_error(
          "archive: block count mismatch for field '" + f.name + "' (index " +
          std::to_string(n_blocks) + ", grid " +
          std::to_string(grid.block_count()) + ")");
    f.blocks.resize(n_blocks);
    for (auto& b : f.blocks) {
      b.offset = in.get_varint();
      b.size = in.get_varint();
      b.crc = in.get<std::uint32_t>();
      b.min = in.get<double>();
      b.max = in.get<double>();
    }
    if (flags & kFlagParity) {
      const auto group = in.get_varint();
      if (group > std::numeric_limits<std::uint32_t>::max())
        throw std::runtime_error("archive: parity group size out of range "
                                 "for field '" + f.name + "'");
      f.parity_group = static_cast<std::uint32_t>(group);
      if (f.parity_group > 0) {
        const std::size_t n_groups =
            (n_blocks + f.parity_group - 1) / f.parity_group;
        f.parity.resize(n_groups);
        for (auto& p : f.parity) {
          p.offset = in.get_varint();
          p.size = in.get_varint();
          p.crc = in.get<std::uint32_t>();
        }
      }
    }
    fields.push_back(std::move(f));
  }
  if (!in.exhausted())
    throw std::runtime_error("archive: trailing bytes after footer");
  return fields;
}

}  // namespace sz14::archive
