#include "archive/codec.hpp"

#include <cstring>

#include "baselines/fpzip_like.hpp"
#include "baselines/gzip_like.hpp"
#include "baselines/zfp_like.hpp"
#include "core/compressor.hpp"
#include "encoding/deflate_like.hpp"

namespace sz14::archive {
namespace {

// --- sz14: native f32 and f64 error-bounded paths ------------------------
//
// These run the full specialized kernel stack under the caller's per-call
// ExecPolicy: an ArchiveWriter whose policy selects kTurbo compresses
// every block through the reciprocal-multiply kernels (bound-conformant,
// not bit-identical to kFast archives of the same data — each mode is
// individually deterministic, so CRCs reproduce within a mode), and the
// writer's scratch arena serves every block task.

std::vector<std::uint8_t> sz14_c32(std::span<const float> block,
                                   const Dims& dims, double eb_abs,
                                   const ExecPolicy& exec) {
  Options opts;
  opts.eb_abs = eb_abs;
  opts.exec = exec;
  return compress(block, dims, opts);
}

std::vector<float> sz14_d32(std::span<const std::uint8_t> stream,
                            const ExecPolicy& exec) {
  return decompress(stream, exec).data;
}

std::vector<std::uint8_t> sz14_c64(std::span<const double> block,
                                   const Dims& dims, double eb_abs,
                                   const ExecPolicy& exec) {
  Options opts;
  opts.eb_abs = eb_abs;
  opts.exec = exec;
  return compress(block, dims, opts);
}

std::vector<double> sz14_d64(std::span<const std::uint8_t> stream,
                             const ExecPolicy& exec) {
  return decompress64(stream, exec).data;
}

// --- zfp_like / fpzip_like: f32 through the baseline classes --------------

std::vector<std::uint8_t> zfp_c32(std::span<const float> block,
                                  const Dims& dims, double eb_abs,
                                  const ExecPolicy& /*exec*/) {
  return baselines::Zfp().compress(block, dims, eb_abs);
}

std::vector<float> zfp_d32(std::span<const std::uint8_t> stream,
                           const ExecPolicy& exec) {
  return baselines::Zfp().decompress(stream, exec);
}

std::vector<std::uint8_t> fpzip_c32(std::span<const float> block,
                                    const Dims& dims, double eb_abs,
                                    const ExecPolicy& /*exec*/) {
  return baselines::Fpzip().compress(block, dims, eb_abs);
}

std::vector<float> fpzip_d32(std::span<const std::uint8_t> stream,
                             const ExecPolicy& exec) {
  return baselines::Fpzip().decompress(stream, exec);
}

// --- gzip_like: f32 via the baseline class, f64 as raw deflated bytes -----

std::vector<std::uint8_t> gzip_c32(std::span<const float> block,
                                   const Dims& dims, double eb_abs,
                                   const ExecPolicy& /*exec*/) {
  return baselines::Gzip().compress(block, dims, eb_abs);
}

std::vector<float> gzip_d32(std::span<const std::uint8_t> stream,
                            const ExecPolicy& exec) {
  return baselines::Gzip().decompress(stream, exec);
}

std::vector<std::uint8_t> gzip_c64(std::span<const double> block,
                                   const Dims& /*dims*/, double /*eb_abs*/,
                                   const ExecPolicy& /*exec*/) {
  return deflate_like_compress(
      {reinterpret_cast<const std::uint8_t*>(block.data()),
       block.size() * sizeof(double)});
}

std::vector<double> gzip_d64(std::span<const std::uint8_t> stream,
                             const ExecPolicy& /*exec*/) {
  const auto bytes = deflate_like_decompress(stream);
  if (bytes.size() % sizeof(double) != 0)
    throw std::runtime_error("archive: gzip_like f64 payload not 8-aligned");
  std::vector<double> values(bytes.size() / sizeof(double));
  std::memcpy(values.data(), bytes.data(), bytes.size());
  return values;
}

constexpr CodecOps kCodecs[] = {
    {kCodecSz14, "sz14", true, sz14_c32, sz14_d32, sz14_c64, sz14_d64},
    {kCodecZfp, "zfp_like", true, zfp_c32, zfp_d32, nullptr, nullptr},
    {kCodecFpzip, "fpzip_like", false, fpzip_c32, fpzip_d32, nullptr, nullptr},
    {kCodecGzip, "gzip_like", false, gzip_c32, gzip_d32, gzip_c64, gzip_d64},
};

}  // namespace

std::span<const CodecOps> codec_table() noexcept { return kCodecs; }

const CodecOps* codec_by_id(std::uint8_t id) noexcept {
  for (const auto& c : kCodecs)
    if (c.id == id) return &c;
  return nullptr;
}

const CodecOps* codec_by_name(std::string_view name) noexcept {
  for (const auto& c : kCodecs)
    if (name == c.name) return &c;
  return nullptr;
}

}  // namespace sz14::archive
