#include "archive/blocking.hpp"

#include <algorithm>
#include <stdexcept>

namespace sz14::archive {

Region Region::whole(const Dims& dims) {
  Region r;
  r.rank = dims.rank();
  for (std::size_t a = 0; a < r.rank; ++a) r.extent[a] = dims.extent(a);
  return r;
}

std::size_t Region::count() const noexcept {
  std::size_t n = 1;
  for (std::size_t a = 0; a < rank; ++a) n *= extent[a];
  return rank == 0 ? 0 : n;
}

Dims Region::shape() const {
  return Dims(std::span<const std::size_t>(extent.data(), rank));
}

BlockGrid::BlockGrid(const Dims& field, const Dims& block) : field_(field) {
  if (field.rank() != block.rank())
    throw std::invalid_argument("BlockGrid: field/block rank mismatch (" +
                                field.to_string() + " vs " +
                                block.to_string() + ")");
  // Clip oversized block extents so a block never exceeds the field.
  std::array<std::size_t, kMaxDims> clipped{};
  for (std::size_t a = 0; a < field.rank(); ++a)
    clipped[a] = std::min(block.extent(a), field.extent(a));
  block_ = Dims(std::span<const std::size_t>(clipped.data(), field.rank()));
  for (std::size_t a = 0; a < field.rank(); ++a) {
    grid_[a] = (field.extent(a) + block_.extent(a) - 1) / block_.extent(a);
    count_ *= grid_[a];
  }
}

void BlockGrid::block_origin(std::size_t index,
                             std::span<std::size_t> out) const {
  if (index >= count_)
    throw std::out_of_range("BlockGrid: block index out of range");
  const std::size_t rank = field_.rank();
  std::size_t rem = index;
  for (std::size_t a = rank; a-- > 0;) {
    out[a] = (rem % grid_[a]) * block_.extent(a);
    rem /= grid_[a];
  }
}

Dims BlockGrid::block_extents(std::size_t index) const {
  std::array<std::size_t, kMaxDims> origin{};
  block_origin(index, origin);
  std::array<std::size_t, kMaxDims> ext{};
  const std::size_t rank = field_.rank();
  for (std::size_t a = 0; a < rank; ++a)
    ext[a] = std::min(block_.extent(a), field_.extent(a) - origin[a]);
  return Dims(std::span<const std::size_t>(ext.data(), rank));
}

bool BlockGrid::intersects(std::size_t index, const Region& r) const {
  std::array<std::size_t, kMaxDims> origin{};
  block_origin(index, origin);
  const std::size_t rank = field_.rank();
  for (std::size_t a = 0; a < rank; ++a) {
    const std::size_t block_end =
        origin[a] + std::min(block_.extent(a), field_.extent(a) - origin[a]);
    const std::size_t region_end = r.origin[a] + r.extent[a];
    if (origin[a] >= region_end || r.origin[a] >= block_end) return false;
  }
  return true;
}

}  // namespace sz14::archive
