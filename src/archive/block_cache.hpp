// Bounded LRU cache of DECODED blocks for the archive serving path, keyed
// by (field index, block index).  A hot-region read that hits skips the
// pread, the CRC pass, and the whole entropy+reconstruction decode — the
// scatter copies straight out of the cached vector.
//
// Thread-safety: one mutex guards the recency list + index map; the cached
// vectors themselves are immutable and handed out as shared_ptr<const ...>,
// so readers scatter from them without holding the lock, and eviction can
// never free a block another thread is still copying from.
//
// Capacity is in decoded BYTES.  Capacity 0 (the default) disables the
// cache outright: get() always misses and put() is a no-op, so a reader
// that never opts in pays one branch per block and nothing else.  An entry
// larger than the whole capacity is never admitted.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace sz14::archive {

class BlockCache {
 public:
  /// Resize the budget; shrinking evicts LRU-first until resident bytes
  /// fit.  Safe to call concurrently with get()/put().
  void set_capacity(std::size_t bytes);

  [[nodiscard]] std::size_t capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept { return capacity() > 0; }

  /// Decoded bytes currently resident.
  [[nodiscard]] std::size_t resident_bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  void reset_stats() noexcept {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
  }

  /// Lookup; null on miss.  The element type is pinned per field (the
  /// reader validates dtype before decoding), and a stored-type mismatch
  /// is treated as a miss rather than a cast.
  template <typename T>
  [[nodiscard]] std::shared_ptr<const std::vector<T>> get(std::size_t field,
                                                          std::size_t block) {
    return std::static_pointer_cast<const std::vector<T>>(
        get_erased(field, block, sizeof(T)));
  }

  /// Insert (or refresh) a decoded block.  No-op when disabled or when the
  /// entry alone exceeds the capacity.
  template <typename T>
  void put(std::size_t field, std::size_t block,
           std::shared_ptr<const std::vector<T>> data) {
    const std::size_t bytes = data->size() * sizeof(T);
    put_erased(field, block, sizeof(T),
               std::static_pointer_cast<const void>(std::move(data)), bytes);
  }

  /// Drop every entry (stats are kept; use reset_stats() for those).
  void clear();

 private:
  struct Key {
    std::size_t field;
    std::size_t block;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // Fibonacci-mix the field id so (f, b) and (b, f) don't collide.
      return k.field * 0x9E3779B97F4A7C15ull ^ k.block;
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const void> data;
    std::size_t bytes;
    std::size_t elem_size;
  };

  [[nodiscard]] std::shared_ptr<const void> get_erased(std::size_t field,
                                                       std::size_t block,
                                                       std::size_t elem_size);
  void put_erased(std::size_t field, std::size_t block, std::size_t elem_size,
                  std::shared_ptr<const void> data, std::size_t bytes);

  /// Drop LRU entries until resident bytes fit `budget`.  Caller holds
  /// mutex_; freed vectors are moved into `graveyard` so their (possibly
  /// large) deallocation happens after the lock is released.
  void evict_to(std::size_t budget,
                std::vector<std::shared_ptr<const void>>& graveyard);

  std::mutex mutex_;                // guards lru_ + map_
  std::list<Entry> lru_;            // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  std::atomic<std::size_t> capacity_{0};
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace sz14::archive
