#include "archive/shard.hpp"

#include "archive/archive_format.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace sz14::archive {

std::string shard_table_name(const std::string& manifest_path,
                             std::size_t index) {
  char suffix[16];
  std::snprintf(suffix, sizeof suffix, ".s%04zu", index);
  return std::filesystem::path(manifest_path).filename().string() + suffix;
}

std::string shard_file_name(const std::string& manifest_path,
                            std::size_t index) {
  const std::filesystem::path p(manifest_path);
  return (p.parent_path() / shard_table_name(manifest_path, index)).string();
}

void write_manifest_superblock(ByteWriter& out, std::uint8_t flags) {
  out.put<std::uint32_t>(kManifestMagic);
  out.put<std::uint8_t>(kManifestVersion);
  out.put<std::uint8_t>(flags);
  out.put<std::uint16_t>(0);  // reserved
}

std::uint8_t read_manifest_superblock(ByteReader& in) {
  if (in.get<std::uint32_t>() != kManifestMagic)
    throw std::runtime_error("archive: bad magic (not an SZM manifest)");
  const auto version = in.get<std::uint8_t>();
  if (version != kManifestVersion)
    throw std::runtime_error("archive: unsupported manifest version " +
                             std::to_string(version));
  const auto flags = in.get<std::uint8_t>();
  if (flags & ~kFlagParity)
    throw std::runtime_error("archive: unknown manifest flags " +
                             std::to_string(flags));
  (void)in.get<std::uint16_t>();  // reserved
  return flags;
}

void write_shard_header(ByteWriter& out, std::uint32_t index) {
  out.put<std::uint32_t>(kShardMagic);
  out.put<std::uint8_t>(kShardVersion);
  out.put<std::uint8_t>(0);
  out.put<std::uint16_t>(0);
  out.put<std::uint32_t>(index);
  out.put<std::uint32_t>(0);  // reserved
}

void read_shard_header(ByteReader& in, std::uint32_t expect) {
  if (in.get<std::uint32_t>() != kShardMagic)
    throw std::runtime_error("archive: bad shard magic (not an SZS shard)");
  const auto version = in.get<std::uint8_t>();
  if (version != kShardVersion)
    throw std::runtime_error("archive: unsupported shard version " +
                             std::to_string(version));
  (void)in.get<std::uint8_t>();
  (void)in.get<std::uint16_t>();
  const auto index = in.get<std::uint32_t>();
  if (index != expect)
    throw std::runtime_error("archive: shard claims index " +
                             std::to_string(index) + ", manifest expects " +
                             std::to_string(expect) +
                             " (shard file renamed or swapped?)");
  (void)in.get<std::uint32_t>();
}

void write_shard_table(const std::vector<ShardEntry>& shards,
                       ByteWriter& out) {
  out.put_varint(shards.size());
  for (const auto& s : shards) {
    out.put_string(s.file);
    out.put_varint(s.size);
    out.put<std::uint32_t>(s.crc);
  }
}

std::vector<ShardEntry> read_shard_table(ByteReader& in) {
  const auto n = static_cast<std::size_t>(in.get_varint());
  std::vector<ShardEntry> shards;
  shards.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ShardEntry s;
    s.file = in.get_string();
    if (s.file.empty())
      throw std::runtime_error("archive: empty shard file name in manifest");
    // Names are resolved against the manifest's directory; a separator
    // would let a hostile manifest reach outside it.
    if (s.file.find('/') != std::string::npos ||
        s.file.find('\\') != std::string::npos)
      throw std::runtime_error(
          "archive: shard file name must be directory-free: " + s.file);
    s.size = in.get_varint();
    s.crc = in.get<std::uint32_t>();
    shards.push_back(std::move(s));
  }
  return shards;
}

void ShardSet::open_single(const std::string& path, FetchMode mode) {
  parts_.clear();
  sharded_ = false;
  mode_ = mode;
  Part p;
  p.file = std::make_unique<PreadFile>(path, mode);
  p.info.path = path;
  p.info.logical_start = 0;
  p.info.header = 0;  // logical offsets ARE absolute file offsets
  p.info.size = p.file->size();
  p.info.file_bytes = p.file->size();
  logical_size_ = p.info.size;
  parts_.push_back(std::move(p));
}

void ShardSet::open_shards(const std::string& manifest_path,
                           const std::vector<ShardEntry>& shards,
                           FetchMode mode) {
  std::vector<Part> parts;
  parts.reserve(shards.size());
  std::uint64_t logical = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const auto& s = shards[i];
    Part p;
    p.info.path =
        (std::filesystem::path(manifest_path).parent_path() / s.file)
            .string();
    p.file = std::make_unique<PreadFile>(p.info.path, mode);
    if (p.file->size() < kShardHeaderSize + s.size)
      throw std::runtime_error(
          "archive: shard " + p.info.path + " holds " +
          std::to_string(p.file->size()) + " bytes, manifest expects " +
          std::to_string(kShardHeaderSize + s.size));
    std::array<std::uint8_t, kShardHeaderSize> hdr{};
    p.file->read_at(0, hdr);
    ByteReader hr(hdr);
    read_shard_header(hr, static_cast<std::uint32_t>(i));
    p.info.logical_start = logical;
    p.info.header = kShardHeaderSize;
    p.info.size = s.size;
    p.info.file_bytes = p.file->size();
    p.info.crc = s.crc;
    logical += s.size;
    parts.push_back(std::move(p));
  }
  parts_ = std::move(parts);
  logical_size_ = logical;
  sharded_ = true;
  mode_ = mode;
}

FetchMode ShardSet::fetch_mode() const noexcept {
  // A zero-shard set has no parts to map; report the requested mode so an
  // empty sharded archive opened with kMmap is not mistaken for a fallback.
  for (const auto& p : parts_)
    if (p.file->fetch_mode() != FetchMode::kMmap) return FetchMode::kPread;
  return parts_.empty() ? mode_ : FetchMode::kMmap;
}

const ShardSet::Part& ShardSet::part_at(std::uint64_t offset) const {
  // Last part whose logical_start <= offset.
  auto it = std::upper_bound(
      parts_.begin(), parts_.end(), offset,
      [](std::uint64_t off, const Part& p) { return off < p.info.logical_start; });
  if (it == parts_.begin())
    throw std::runtime_error("archive: logical offset " +
                             std::to_string(offset) + " before first shard");
  return *std::prev(it);
}

void ShardSet::read_at(std::uint64_t offset,
                       std::span<std::uint8_t> out) const {
  std::uint64_t pos = offset;
  std::size_t done = 0;
  while (done < out.size()) {
    if (pos >= logical_size_)
      throw std::runtime_error(
          "archive: read past end of payload space (logical offset " +
          std::to_string(pos) + " of " + std::to_string(logical_size_) + ")");
    const Part& p = part_at(pos);
    const std::uint64_t local = pos - p.info.logical_start;
    const std::uint64_t avail = p.info.size - local;
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(avail, out.size() - done));
    p.file->read_at(p.info.header + local, out.subspan(done, take));
    pos += take;
    done += take;
  }
}

std::span<const std::uint8_t> ShardSet::view(
    std::uint64_t offset, std::uint64_t size) const noexcept {
  if (size == 0 || offset > logical_size_ || size > logical_size_ - offset ||
      parts_.empty())
    return {};
  const Part& p = part_at(offset);
  const std::uint64_t local = offset - p.info.logical_start;
  // A window that straddles two parts has no contiguous backing: stage it.
  if (local >= p.info.size || size > p.info.size - local) return {};
  return p.file->view(p.info.header + local, size);
}

void ShardSet::advise(std::uint64_t offset, std::uint64_t size,
                      PreadFile::Advice a) const noexcept {
  if (size == 0 || offset >= logical_size_) return;
  if (size > logical_size_ - offset) size = logical_size_ - offset;
  for (const auto& p : parts_) {
    const std::uint64_t lo = std::max(offset, p.info.logical_start);
    const std::uint64_t hi =
        std::min(offset + size, p.info.logical_start + p.info.size);
    if (lo >= hi) continue;
    p.file->advise(p.info.header + (lo - p.info.logical_start), hi - lo, a);
  }
}

ShardSet::Location ShardSet::locate(std::uint64_t offset) const {
  if (offset >= logical_size_)
    throw std::runtime_error("archive: logical offset " +
                             std::to_string(offset) +
                             " past end of payload space");
  const Part& p = part_at(offset);
  const std::uint64_t local = offset - p.info.logical_start;
  Location loc;
  loc.part = static_cast<std::size_t>(&p - parts_.data());
  loc.path = p.info.path;
  loc.offset = p.info.header + local;
  loc.available = p.info.size - local;
  return loc;
}

}  // namespace sz14::archive
