// Pluggable block-codec backend for the SZA archive container, following
// the CCID operations-table idiom (one static row of function pointers per
// codec, looked up by a stable numeric id carried in the footer index).
//
// Every block of every field is compressed independently through one of
// these backends, so a single container can mix error-bounded lossy fields
// (sz14, zfp_like) with exactly-lossless ones (fpzip_like, gzip_like).
// The numeric ids are on-disk format: never renumber, only append.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/dims.hpp"
#include "common/exec_policy.hpp"

namespace sz14::archive {

/// Stable on-disk codec identifiers (footer `codec_id` byte).
inline constexpr std::uint8_t kCodecSz14 = 1;
inline constexpr std::uint8_t kCodecZfp = 2;
inline constexpr std::uint8_t kCodecFpzip = 3;
inline constexpr std::uint8_t kCodecGzip = 4;

/// Operations table row.  `compress64`/`decompress64` are null for backends
/// without a double-precision path; the writer rejects f64 fields for them.
/// Both directions receive the caller's ExecPolicy (per-call hot-path mode +
/// scratch arena — the sz14 backend honors both; the baseline backends
/// accept and ignore it).  Execution policy never reaches the on-disk
/// format: compressed bytes and decoded values are policy-independent
/// (modulo kTurbo's explicit compress-side bit-identity trade), so scratch
/// and pool choices are invisible in the data.
struct CodecOps {
  std::uint8_t id;
  const char* name;
  bool lossy;

  std::vector<std::uint8_t> (*compress32)(std::span<const float> block,
                                          const Dims& block_dims,
                                          double eb_abs,
                                          const ExecPolicy& exec);
  std::vector<float> (*decompress32)(std::span<const std::uint8_t> stream,
                                     const ExecPolicy& exec);

  std::vector<std::uint8_t> (*compress64)(std::span<const double> block,
                                          const Dims& block_dims,
                                          double eb_abs,
                                          const ExecPolicy& exec);
  std::vector<double> (*decompress64)(std::span<const std::uint8_t> stream,
                                      const ExecPolicy& exec);
};

/// All registered codecs, id-ascending.
std::span<const CodecOps> codec_table() noexcept;

/// Lookup by on-disk id; nullptr when unknown.
const CodecOps* codec_by_id(std::uint8_t id) noexcept;

/// Lookup by name ("sz14", "zfp_like", "fpzip_like", "gzip_like");
/// nullptr when unknown.
const CodecOps* codec_by_name(std::string_view name) noexcept;

}  // namespace sz14::archive
