#include "archive/block_cache.hpp"

namespace sz14::archive {

void BlockCache::set_capacity(std::size_t bytes) {
  std::vector<std::shared_ptr<const void>> graveyard;
  {
    std::lock_guard lock(mutex_);
    capacity_.store(bytes, std::memory_order_relaxed);
    evict_to(bytes, graveyard);
  }
}

void BlockCache::clear() {
  std::vector<std::shared_ptr<const void>> graveyard;
  {
    std::lock_guard lock(mutex_);
    evict_to(0, graveyard);
  }
}

std::shared_ptr<const void> BlockCache::get_erased(std::size_t field,
                                                   std::size_t block,
                                                   std::size_t elem_size) {
  if (!enabled()) {
    // Disabled caches don't count misses: the counters should describe
    // cache behaviour, not reads that never opted in.
    return nullptr;
  }
  std::lock_guard lock(mutex_);
  const auto it = map_.find(Key{field, block});
  if (it == map_.end() || it->second->elem_size != elem_size) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->data;
}

void BlockCache::put_erased(std::size_t field, std::size_t block,
                            std::size_t elem_size,
                            std::shared_ptr<const void> data,
                            std::size_t bytes) {
  std::vector<std::shared_ptr<const void>> graveyard;
  {
    std::lock_guard lock(mutex_);
    const std::size_t cap = capacity_.load(std::memory_order_relaxed);
    if (cap == 0 || bytes > cap) return;
    const Key key{field, block};
    const auto it = map_.find(key);
    if (it != map_.end()) {
      // Concurrent decoders can race to insert the same block; keep the
      // newcomer (both decode identical values) and fix the accounting.
      bytes_.fetch_sub(it->second->bytes, std::memory_order_relaxed);
      graveyard.push_back(std::move(it->second->data));
      lru_.erase(it->second);
      map_.erase(it);
    }
    lru_.push_front(Entry{key, std::move(data), bytes, elem_size});
    map_.emplace(key, lru_.begin());
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    evict_to(cap, graveyard);
  }
}

void BlockCache::evict_to(std::size_t budget,
                          std::vector<std::shared_ptr<const void>>& graveyard) {
  while (bytes_.load(std::memory_order_relaxed) > budget && !lru_.empty()) {
    Entry& victim = lru_.back();
    bytes_.fetch_sub(victim.bytes, std::memory_order_relaxed);
    graveyard.push_back(std::move(victim.data));
    map_.erase(victim.key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace sz14::archive
