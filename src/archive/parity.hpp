// XOR block-group parity for SZA archives: the erasure math shared by the
// writer (compute a group's parity payload at append time), the reader
// (read-repair a CRC-failed block on the fly), and fsck/scrub (heal a
// damaged payload in place).
//
// The scheme is deliberately minimal — RAID-4-style single parity per
// group of `parity_group` consecutive blocks of one field.  The parity
// payload is the byte-wise XOR of the member payloads, each zero-padded to
// the size of the largest member, so reconstruction of one lost member is
// XOR of the parity with every OTHER member, truncated to the lost
// member's stored size.  Every reconstruction is verified against the
// member's stored CRC-32 before it is trusted: two damaged members in one
// group can never be silently mis-repaired — the attempt simply fails.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "archive/archive_format.hpp"
#include "archive/shard.hpp"

namespace sz14::archive {

/// Number of parity groups for `blocks` data blocks at group size `group`.
[[nodiscard]] constexpr std::size_t parity_group_count(
    std::size_t blocks, std::uint32_t group) noexcept {
  return group == 0 ? 0 : (blocks + group - 1) / group;
}

/// Parity group that block `block` of a parity-enabled field belongs to.
[[nodiscard]] constexpr std::size_t parity_group_of(
    std::size_t block, std::uint32_t group) noexcept {
  return block / group;
}

/// acc ^= src, growing acc (zero-padded) to cover src.
void xor_into(std::vector<std::uint8_t>& acc,
              std::span<const std::uint8_t> src);

/// XOR parity payload of one group of member payloads (writer side).
[[nodiscard]] std::vector<std::uint8_t> compute_group_parity(
    std::span<const std::vector<std::uint8_t>> members);

/// Read `size` bytes at `offset` and compare against `crc`.
[[nodiscard]] bool verify_payload(const ShardSet& src, std::uint64_t offset,
                                  std::uint64_t size, std::uint32_t crc);

/// Reconstruct the payload of data block `bad` of `f` from its parity
/// group: XOR the group's parity payload with every OTHER member, truncate
/// to the bad block's stored size, and verify the result against the bad
/// block's stored CRC-32.  Returns nullopt when the field has no parity,
/// any other member or the parity payload fails ITS stored CRC (a second
/// damaged member — unrecoverable), or the reconstruction does not verify.
[[nodiscard]] std::optional<std::vector<std::uint8_t>>
reconstruct_block_payload(const ShardSet& src, const FieldEntry& f,
                          std::size_t bad);

/// Recompute the parity payload of group `group` of `f` from its data
/// members (the parity-damage heal path).  Returns nullopt when any data
/// member fails its stored CRC — parity cannot be rebuilt over bad data.
[[nodiscard]] std::optional<std::vector<std::uint8_t>>
recompute_group_parity(const ShardSet& src, const FieldEntry& f,
                       std::size_t group);

}  // namespace sz14::archive
