// Single-flight map for the archive serving path: when N threads race to
// decode the SAME (field, block) — the signature load of a hot serving
// daemon, where many clients ask for overlapping regions — exactly one
// thread (the leader) performs the pread+CRC+decode and every concurrent
// follower blocks until the leader publishes, then shares the decoded
// vector.  N concurrent reads of one block cost one decode instead of N.
//
// This sits IN FRONT of the BlockCache: the cache deduplicates *repeat*
// reads across time, the single-flight map deduplicates *simultaneous*
// reads — with both enabled a cold concurrent burst decodes each block
// exactly once (the leader re-probes the cache after winning leadership,
// so a decode finishing between a follower's cache miss and its begin()
// call can never cause a duplicate decode).
//
// Entries exist only while a decode is in flight: begin() inserts, the
// leader's publish() removes.  A leader that fails publishes the exception
// instead, so followers rethrow rather than hang.  Values are type-erased
// (shared_ptr<const void>) exactly like BlockCache storage; the element
// type is pinned per field by the reader's dtype check, so a (field,
// block) key can never be requested at two types concurrently.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace sz14::archive {

class SingleFlight {
 public:
  /// One in-flight decode.  Followers block on `cv` until the leader sets
  /// `done` and either `value` or `error`.
  struct Entry {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const void> value;
    std::exception_ptr error;
  };

  /// Join the flight for (field, block).  Returns the entry and whether
  /// the caller is the leader (first thread in).  A follower is counted in
  /// coalesced() immediately.  The leader MUST eventually call publish()
  /// exactly once — on every path, including failure.
  [[nodiscard]] std::pair<std::shared_ptr<Entry>, bool> begin(
      std::size_t field, std::size_t block);

  /// Leader hand-off: store the decoded value (or the decode error), wake
  /// every follower, and retire the entry so later reads start a fresh
  /// flight (or hit the cache the leader populated).
  void publish(std::size_t field, std::size_t block, Entry& entry,
               std::shared_ptr<const void> value, std::exception_ptr error);

  /// Follower side: block until the leader publishes; rethrows the
  /// leader's exception, otherwise returns the shared decoded value.
  [[nodiscard]] std::shared_ptr<const void> wait(Entry& entry);

  /// Reads that piggybacked on another thread's in-flight decode since
  /// construction or the last reset.
  [[nodiscard]] std::uint64_t coalesced() const noexcept {
    return coalesced_.load(std::memory_order_relaxed);
  }
  void reset_stats() noexcept {
    coalesced_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Key {
    std::size_t field;
    std::size_t block;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return k.field * 0x9E3779B97F4A7C15ull ^ k.block;
    }
  };

  std::mutex mutex_;  // guards inflight_
  std::unordered_map<Key, std::shared_ptr<Entry>, KeyHash> inflight_;
  std::atomic<std::uint64_t> coalesced_{0};
};

}  // namespace sz14::archive
