#include "archive/parity.hpp"

#include <algorithm>

#include "common/checksum.hpp"

namespace sz14::archive {

void xor_into(std::vector<std::uint8_t>& acc,
              std::span<const std::uint8_t> src) {
  if (acc.size() < src.size()) acc.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) acc[i] ^= src[i];
}

std::vector<std::uint8_t> compute_group_parity(
    std::span<const std::vector<std::uint8_t>> members) {
  std::vector<std::uint8_t> parity;
  for (const auto& m : members) xor_into(parity, m);
  return parity;
}

bool verify_payload(const ShardSet& src, std::uint64_t offset,
                    std::uint64_t size, std::uint32_t crc) {
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  src.read_at(offset, buf);
  return crc32(buf) == crc;
}

std::optional<std::vector<std::uint8_t>> reconstruct_block_payload(
    const ShardSet& src, const FieldEntry& f, std::size_t bad) {
  if (f.parity_group == 0 || bad >= f.blocks.size()) return std::nullopt;
  const std::size_t g = parity_group_of(bad, f.parity_group);
  if (g >= f.parity.size()) return std::nullopt;
  const ParityGroupEntry& pg = f.parity[g];

  // Start from the parity payload — which must itself verify, otherwise
  // the group already has two damaged members.
  std::vector<std::uint8_t> acc(static_cast<std::size_t>(pg.size));
  src.read_at(pg.offset, acc);
  if (crc32(acc) != pg.crc) return std::nullopt;

  const std::size_t lo = g * f.parity_group;
  const std::size_t hi =
      std::min(lo + f.parity_group, f.blocks.size());
  std::vector<std::uint8_t> member;
  for (std::size_t i = lo; i < hi; ++i) {
    if (i == bad) continue;
    const BlockEntry& b = f.blocks[i];
    member.resize(static_cast<std::size_t>(b.size));
    src.read_at(b.offset, member);
    // A second CRC-failed member means the XOR would blend two unknowns
    // into garbage; refuse rather than mis-repair.
    if (crc32(member) != b.crc) return std::nullopt;
    xor_into(acc, member);
  }

  const BlockEntry& target = f.blocks[bad];
  if (acc.size() < target.size) return std::nullopt;  // malformed index
  acc.resize(static_cast<std::size_t>(target.size));
  // Final gate: the reconstruction must match the stored CRC exactly.
  // This catches the residual case where the "intact" members XOR to
  // something other than the lost payload (e.g. damage that left a
  // member's CRC accidentally valid).
  if (crc32(acc) != target.crc) return std::nullopt;
  return acc;
}

std::optional<std::vector<std::uint8_t>> recompute_group_parity(
    const ShardSet& src, const FieldEntry& f, std::size_t group) {
  if (f.parity_group == 0 || group >= f.parity.size()) return std::nullopt;
  const std::size_t lo = group * f.parity_group;
  const std::size_t hi =
      std::min(lo + f.parity_group, f.blocks.size());
  std::vector<std::uint8_t> acc;
  std::vector<std::uint8_t> member;
  for (std::size_t i = lo; i < hi; ++i) {
    const BlockEntry& b = f.blocks[i];
    member.resize(static_cast<std::size_t>(b.size));
    src.read_at(b.offset, member);
    if (crc32(member) != b.crc) return std::nullopt;
    xor_into(acc, member);
  }
  // The stored parity slot is exactly max-member-size bytes; a recompute
  // that exceeds it means the index is inconsistent — refuse to rewrite.
  if (acc.size() > f.parity[group].size) return std::nullopt;
  // Pad to the stored parity size so the rewrite overwrites every byte of
  // the on-disk parity payload (members can be smaller than the largest).
  acc.resize(static_cast<std::size_t>(f.parity[group].size), 0);
  return acc;
}

}  // namespace sz14::archive
