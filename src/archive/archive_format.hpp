// On-disk layout of the SZA block-sharded archive container.
//
//   [superblock: magic u32 | version u8 | flags u8 | reserved u16]   8 bytes
//   [block payloads, appended field by field ...]
//   [footer: field table + block index, see below]
//   [trailer: footer_size u64 | footer_crc32 u32 | footer magic u32] 16 bytes
//
// The footer lives at the END of the file so writes are strictly
// append-only (`append_field()` never rewrites earlier bytes); a reader
// seeks to the trailer, validates the footer checksum, and then has an
// O(1)-per-block index: absolute offset, payload size, CRC-32, codec id,
// and a min/max value summary for every block of every field.
//
// Footer, per field (ByteWriter little-endian primitives):
//   name string | dtype u8 | codec u8 | eb_abs f64 |
//   dims | block_dims | block_count varint |
//   per block: offset varint | size varint | crc32 u32 | min f64 | max f64
//
// Parity (opt-in; superblock flag kFlagParity): blocks are grouped into
// fixed-size parity groups and each group gets one XOR parity payload —
// the XOR of its member payloads zero-padded to the largest member — so
// any ONE damaged member (data or parity) can be reconstructed from the
// rest.  When the flag is set, every field record is followed by:
//   parity_group varint |                        (0 = this field unprotected)
//   if parity_group > 0: per group: offset varint | size varint | crc32 u32
// Parity-off archives carry flag 0 and emit NO parity bytes anywhere, so
// they stay byte-identical to the pre-parity format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytebuffer.hpp"
#include "common/dims.hpp"

namespace sz14::archive {

inline constexpr std::uint32_t kArchiveMagic = 0x31'41'5A'53u;  // "SZA1"
inline constexpr std::uint32_t kFooterMagic = 0x46'41'5A'53u;   // "SZAF"
inline constexpr std::uint8_t kArchiveVersion = 1;
inline constexpr std::size_t kSuperblockSize = 8;
inline constexpr std::size_t kTrailerSize = 16;

/// Superblock flag: the footer carries per-field parity sections.
inline constexpr std::uint8_t kFlagParity = 0x01;

/// Data blocks per parity group when parity is enabled without an explicit
/// group size (16 data + 1 XOR parity block = 6.25% space overhead).
inline constexpr std::uint32_t kDefaultParityGroup = 16;

/// Index record for one compressed block (row-major position in the grid
/// is implicit: entry i describes block i).
struct BlockEntry {
  std::uint64_t offset = 0;  ///< absolute file offset of the payload
  std::uint64_t size = 0;    ///< payload bytes
  std::uint32_t crc = 0;     ///< CRC-32 of the payload
  double min = 0.0;          ///< value summary of the source block
  double max = 0.0;
};

/// Index record for one parity group's XOR payload.
struct ParityGroupEntry {
  std::uint64_t offset = 0;  ///< absolute file offset of the parity payload
  std::uint64_t size = 0;    ///< parity bytes (largest member payload size)
  std::uint32_t crc = 0;     ///< CRC-32 of the parity payload
};

/// Index record for one named field.
struct FieldEntry {
  std::string name;
  std::uint8_t dtype = 0;  ///< core/format kDtypeF32 / kDtypeF64
  std::uint8_t codec = 0;  ///< archive/codec.hpp id
  double eb_abs = 0.0;     ///< bound the lossy blocks were written with
  Dims dims;               ///< field shape
  Dims block_dims;         ///< nominal block shape (edge blocks clipped)
  std::vector<BlockEntry> blocks;
  std::uint32_t parity_group = 0;  ///< data blocks per group (0 = no parity)
  std::vector<ParityGroupEntry> parity;  ///< one entry per group

  [[nodiscard]] std::uint64_t payload_bytes() const noexcept {
    std::uint64_t n = 0;
    for (const auto& b : blocks) n += b.size;
    return n;
  }

  [[nodiscard]] std::uint64_t parity_bytes() const noexcept {
    std::uint64_t n = 0;
    for (const auto& p : parity) n += p.size;
    return n;
  }
};

void write_superblock(ByteWriter& out, std::uint8_t flags = 0);

/// Returns the superblock flags.  Throws std::runtime_error on bad magic,
/// unsupported version, or unknown flag bits (a parity-unaware build must
/// fail loudly on a parity archive, not misparse its footer).
std::uint8_t read_superblock(ByteReader& in);

void write_footer(const std::vector<FieldEntry>& fields, ByteWriter& out,
                  std::uint8_t flags = 0);

/// Parses footer bytes (not including the trailer); `flags` is the
/// superblock flags byte, which gates the per-field parity section.
/// Throws std::runtime_error on malformed input, duplicate field names,
/// unknown codec ids, a block count that does not match the field's grid,
/// or a parity group count that does not match the block count.
std::vector<FieldEntry> read_footer(ByteReader& in, std::uint8_t flags = 0);

}  // namespace sz14::archive
