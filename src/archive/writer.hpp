// Append-only SZA archive writer: each append_field() call shards one
// named d-dimensional field into fixed-size blocks, compresses the blocks
// in parallel on a thread pool (batch API), and appends the payloads to the
// container.  finish() seals the file with the footer index + trailer.
//
// With `shard_size` > 0 the writer produces a SHARDED archive instead: the
// named path becomes a small `.szm` manifest and the payload bytes land in
// rolling shard files next to it (see shard.hpp for the on-disk layout).
// The writer rolls to a new shard before any payload that would push the
// current shard past the threshold (payloads never span shards; one
// oversized payload gets a shard to itself), keeps a running CRC-32 per
// shard, and the per-append checkpoint — shard table + field footer +
// trailer — goes into the manifest after the shard stream is flushed, so
// a checkpoint never indexes shard bytes that are not on disk.
// `shard_size` == 0 (the default) writes the single-file `.sza` format
// through the exact same code path as before — byte-identical output.
//
// Incremental snapshot workflows simply append one field per timestep
// ("temp/t000", "temp/t001", ...); nothing already written is ever touched.
//
// Crash consistency: after every successful append_field() the writer
// emits a footer CHECKPOINT — a complete footer + trailer covering all
// fields so far, flushed to the OS — so a writer killed (or hitting
// ENOSPC/EIO) mid-ingest leaves a file from which ArchiveReader's
// salvage-open and `sz14 archive fsck --repair` recover every completed
// field bit-identical.  Checkpoints are self-delimiting (size + CRC in the
// trailer) and each one supersedes the previous: the next append simply
// continues writing payloads after it, the final checkpoint doubles as the
// sealed archive's footer, and readers never pay anything for the
// superseded ones (block offsets are absolute, the index at EOF wins).
//
// Every write is checked: a failed std::ofstream write throws
// std::runtime_error carrying the failing offset instead of silently
// producing a corrupt archive, and the writer refuses further appends
// afterwards (the file is still salvageable up to the last checkpoint —
// consistent_bytes() says how far).
#pragma once

#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "archive/archive_format.hpp"
#include "archive/shard.hpp"
#include "common/dims.hpp"
#include "common/exec_policy.hpp"
#include "parallel/thread_pool.hpp"

namespace sz14::archive {

class ArchiveWriter {
 public:
  /// Creates (truncates) `path` and writes the superblock.  `policy` is
  /// this writer's per-call execution strategy, applied to every
  /// append_field(): `policy.mode` selects the hot path for block
  /// compression (e.g. HotPathMode::kTurbo for maximum-throughput ingest;
  /// unset resolves the process default once per append), `policy.pool`
  /// supplies the block-compression pool (null: the writer owns a private
  /// pool of `threads` workers, falling back to `policy.threads` when the
  /// ctor argument is 0; both 0 selects hardware_concurrency()).  The
  /// policy is plain per-writer state —
  /// concurrent codec work elsewhere in the process is unaffected.  The
  /// writer keeps one scratch arena across appends, so batch ingest stops
  /// paying per-block buffer allocation; `policy.scratch` is ignored (the
  /// writer's own arena is already per-worker).
  ///
  /// `parity_group` > 0 enables XOR block-group parity: every group of
  /// that many consecutive blocks of a field gets one parity payload (XOR
  /// of the members zero-padded to the largest), written after the data
  /// payloads and indexed in the footer, so any single damaged payload per
  /// group is recoverable (read-repair / fsck / scrub).  Space overhead is
  /// roughly 1/parity_group of the compressed size
  /// (kDefaultParityGroup = 16 → ~6.25%).  0 (the default) writes the
  /// parity-less format, byte-identical to pre-parity archives.
  ///
  /// `shard_size` > 0 selects the sharded container: `path` is written as
  /// an `.szm` manifest and payloads roll into shard files of roughly
  /// that many bytes each (see the class comment).  0 keeps the
  /// single-file format.
  explicit ArchiveWriter(const std::string& path, std::size_t threads = 0,
                         ExecPolicy policy = {},
                         std::uint32_t parity_group = 0,
                         std::uint64_t shard_size = 0);

  /// Seals the archive on destruction if finish() was not called.
  /// Best-effort: a failure to seal is reported on stderr (a destructor
  /// cannot throw) — call finish() explicitly to observe errors properly.
  ~ArchiveWriter();

  ArchiveWriter(const ArchiveWriter&) = delete;
  ArchiveWriter& operator=(const ArchiveWriter&) = delete;

  /// Compress and append a float32 field sharded into `block_dims` blocks
  /// through codec `codec_name` under absolute bound `eb_abs` (ignored by
  /// lossless codecs).  Throws std::invalid_argument on duplicate name,
  /// shape mismatch, or unknown codec; std::runtime_error on I/O failure.
  void append_field(const std::string& name, std::span<const float> data,
                    const Dims& dims, const Dims& block_dims,
                    const std::string& codec_name, double eb_abs);

  /// Double-precision variant; throws std::invalid_argument when the codec
  /// has no f64 path.
  void append_field(const std::string& name, std::span<const double> data,
                    const Dims& dims, const Dims& block_dims,
                    const std::string& codec_name, double eb_abs);

  /// Write footer + trailer and close the file.  Idempotent; append_field()
  /// throws std::logic_error afterwards.
  void finish();

  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// File size through which the on-disk bytes form a complete, readable
  /// archive (end of the last flushed checkpoint).  0 until the first
  /// checkpoint lands; equal to the final file size once finish()ed.
  [[nodiscard]] std::uint64_t consistent_bytes() const noexcept {
    return clean_size_;
  }

  /// True after a write failure: the writer refuses further appends (the
  /// on-disk state up to consistent_bytes() remains valid).
  [[nodiscard]] bool broken() const noexcept { return broken_; }

  /// Index entries written so far (for inspection/tests).
  [[nodiscard]] const std::vector<FieldEntry>& fields() const noexcept {
    return fields_;
  }

  /// True when this writer emits the sharded (manifest + shards) format.
  [[nodiscard]] bool sharded() const noexcept { return shard_size_ > 0; }

  /// Manifest shard table built so far (empty for single-file writers).
  [[nodiscard]] const std::vector<ShardEntry>& shards() const noexcept {
    return shards_;
  }

 private:
  template <typename T>
  void append_impl(const std::string& name, std::span<const T> data,
                   const Dims& dims, const Dims& block_dims,
                   const std::string& codec_name, double eb_abs);

  /// Write + verify stream state on `os` writing file `fpath` at
  /// `*pos` (advanced on success); throws std::runtime_error with the
  /// failing offset and marks the writer broken on failure.  The one
  /// funnel for every byte this class emits — container, manifest and
  /// shard files alike (failpoint site "archive.writer.write").
  void funnel_write(std::ofstream& os, const std::string& fpath,
                    std::uint64_t* pos, std::span<const std::uint8_t> data,
                    const char* what);

  /// funnel_write into the container/manifest stream.
  void raw_write(std::span<const std::uint8_t> data, const char* what);

  /// Next logical/absolute offset a payload will land at.
  [[nodiscard]] std::uint64_t payload_offset() const noexcept {
    return sharded() ? logical_offset_ : offset_;
  }

  /// Append one payload: straight into the container (single-file) or
  /// into the active shard, rolling first when the threshold is reached.
  void payload_write(std::span<const std::uint8_t> data, const char* what);

  /// Flush + close the active shard (if any) and open the next one.
  void roll_shard();

  /// Footer + trailer covering fields_ (and, sharded, the shard table),
  /// flushed; updates clean_size_.
  void write_checkpoint();

  std::string path_;
  std::uint32_t parity_group_ = 0;  // data blocks per parity group (0 = off)
  std::uint64_t shard_size_ = 0;    // payload bytes per shard (0 = one file)
  std::ofstream out_;
  std::uint64_t offset_ = 0;      // absolute file offset of the next write
  std::uint64_t clean_size_ = 0;  // end of the last flushed checkpoint
  // Sharded-mode state: the active shard stream and the manifest table.
  std::ofstream shard_out_;
  std::string shard_path_;             // resolved path of the active shard
  std::uint64_t shard_file_offset_ = 0;  // next write offset in the shard
  std::uint64_t logical_offset_ = 0;     // next logical payload offset
  std::vector<ShardEntry> shards_;
  std::vector<FieldEntry> fields_;
  std::unordered_set<std::string> names_;  // O(1) duplicate-append rejection
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;  // owned_pool_ or the policy's borrow
  ExecPolicy policy_;
  CodecScratch scratch_;  // reused across appends (per-worker slots)
  bool finished_ = false;
  bool broken_ = false;
};

}  // namespace sz14::archive
