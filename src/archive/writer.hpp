// Append-only SZA archive writer: each append_field() call shards one
// named d-dimensional field into fixed-size blocks, compresses the blocks
// in parallel on a thread pool (batch API), and appends the payloads to the
// container.  finish() seals the file with the footer index + trailer.
//
// Incremental snapshot workflows simply append one field per timestep
// ("temp/t000", "temp/t001", ...); nothing already written is ever touched.
#pragma once

#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "archive/archive_format.hpp"
#include "common/dims.hpp"
#include "common/hotpath.hpp"
#include "parallel/thread_pool.hpp"

namespace sz14::archive {

class ArchiveWriter {
 public:
  /// Creates (truncates) `path` and writes the superblock.  `threads == 0`
  /// selects hardware_concurrency() for block compression.  `mode`, when
  /// set, pins the hot-path mode for every append_field() call (e.g.
  /// HotPathMode::kTurbo for maximum-throughput ingest); unset inherits the
  /// ambient process-wide mode.  The pin flips the process-wide selector
  /// for the duration of each append (the block codecs read it on the
  /// worker threads), so don't run other codec work concurrently with a
  /// pinned writer.
  explicit ArchiveWriter(const std::string& path, std::size_t threads = 0,
                         std::optional<HotPathMode> mode = std::nullopt);

  /// Seals the archive on destruction if finish() was not called
  /// (best-effort: errors are swallowed; call finish() to observe them).
  ~ArchiveWriter();

  ArchiveWriter(const ArchiveWriter&) = delete;
  ArchiveWriter& operator=(const ArchiveWriter&) = delete;

  /// Compress and append a float32 field sharded into `block_dims` blocks
  /// through codec `codec_name` under absolute bound `eb_abs` (ignored by
  /// lossless codecs).  Throws std::invalid_argument on duplicate name,
  /// shape mismatch, or unknown codec; std::runtime_error on I/O failure.
  void append_field(const std::string& name, std::span<const float> data,
                    const Dims& dims, const Dims& block_dims,
                    const std::string& codec_name, double eb_abs);

  /// Double-precision variant; throws std::invalid_argument when the codec
  /// has no f64 path.
  void append_field(const std::string& name, std::span<const double> data,
                    const Dims& dims, const Dims& block_dims,
                    const std::string& codec_name, double eb_abs);

  /// Write footer + trailer and close the file.  Idempotent; append_field()
  /// throws std::logic_error afterwards.
  void finish();

  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// Index entries written so far (for inspection/tests).
  [[nodiscard]] const std::vector<FieldEntry>& fields() const noexcept {
    return fields_;
  }

 private:
  template <typename T>
  void append_impl(const std::string& name, std::span<const T> data,
                   const Dims& dims, const Dims& block_dims,
                   const std::string& codec_name, double eb_abs);

  std::string path_;
  std::ofstream out_;
  std::uint64_t offset_ = 0;
  std::vector<FieldEntry> fields_;
  std::unique_ptr<ThreadPool> pool_;
  std::optional<HotPathMode> mode_;
  bool finished_ = false;
};

}  // namespace sz14::archive
