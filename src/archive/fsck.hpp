// Archive consistency checker ("fsck") for SZA containers, the library
// behind `sz14 archive fsck [--repair]`.
//
// fsck_scan() opens the archive in salvage mode (so a torn tail or damaged
// final footer falls back to the last valid checkpoint), then verifies
// every indexed block payload against its stored CRC-32.  The report says
// whether the file is clean, how many trailing bytes a crash left behind
// the last checkpoint, and which blocks (if any) are corrupt inside the
// otherwise-consistent region.
//
// fsck_repair() truncates the file to the last consistent checkpoint, so a
// strict open succeeds again and the salvaged fields read back
// bit-identical.  Payload corruption INSIDE the consistent region is not
// repairable (the data is simply gone) — repair reports it and leaves the
// file alone so the operator can restore from elsewhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sz14::archive {

/// One corrupt block found by the payload scan.
struct FsckBlockIssue {
  std::string field;
  std::size_t block = 0;       ///< index within the field
  std::uint64_t offset = 0;    ///< absolute payload offset
  std::uint64_t size = 0;      ///< payload bytes
  std::uint32_t crc_stored = 0;
  std::uint32_t crc_actual = 0;
};

struct FsckReport {
  std::string path;
  std::uint64_t file_bytes = 0;        ///< on-disk size at scan time
  std::uint64_t consistent_bytes = 0;  ///< end of the newest valid checkpoint
  bool salvage_used = false;  ///< strict open failed; a checkpoint was used
  std::string open_detail;    ///< why the strict open failed (empty if clean)
  std::size_t fields_indexed = 0;
  std::size_t blocks_scanned = 0;
  std::vector<FsckBlockIssue> bad_blocks;
  bool truncated = false;  ///< repair removed the trailing garbage

  /// Clean: strict-openable, no trailing garbage, every block CRC good.
  [[nodiscard]] bool clean() const noexcept {
    return !salvage_used && bad_blocks.empty() &&
           consistent_bytes == file_bytes;
  }
  /// Repairable damage: a truncation would restore strict readability.
  [[nodiscard]] bool needs_truncate() const noexcept {
    return consistent_bytes != file_bytes;
  }
};

/// Scan `path` without modifying it.  Throws std::runtime_error only when
/// the file has no valid checkpoint at all (nothing salvageable).
[[nodiscard]] FsckReport fsck_scan(const std::string& path);

/// Scan, then (when needed) truncate to the last consistent checkpoint.
/// Returns the post-repair report with `truncated` set when the file was
/// cut.  Throws std::runtime_error when nothing is salvageable or the
/// truncation itself fails.
FsckReport fsck_repair(const std::string& path);

/// Render a report as the multi-line human text `sz14 archive fsck` prints.
[[nodiscard]] std::string format_fsck_report(const FsckReport& report);

}  // namespace sz14::archive
