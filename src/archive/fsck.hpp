// Archive consistency checker ("fsck") for SZA containers, the library
// behind `sz14 archive fsck [--repair]`.
//
// fsck_scan() opens the archive in salvage mode (so a torn tail or damaged
// final footer falls back to the last valid checkpoint), then verifies
// every indexed payload — data blocks AND parity payloads — against its
// stored CRC-32.  The report says whether the file is clean, how many
// trailing bytes a crash left behind the last checkpoint, which payloads
// are corrupt inside the otherwise-consistent region, and how much of that
// corruption the parity scheme can heal.
//
// fsck_repair() truncates the file to the last consistent checkpoint, then
// heals CRC-damaged payloads through the shared parity heal engine
// (scrub.hpp): a damaged data block is reconstructed from its parity group
// when the group has at most one damaged member, rewritten in place, and
// re-verified; a damaged parity payload is recomputed from its intact data
// members.  Damage beyond single parity (two bad members in one group, or
// a parity-less archive) is reported and left untouched so the operator
// can restore from elsewhere — never mis-repaired.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sz14::archive {

/// One corrupt payload found by the scan.
struct FsckBlockIssue {
  std::string field;
  bool parity = false;  ///< true: a parity payload (block = group index)
  std::size_t block = 0;       ///< block index (or parity-group index)
  std::uint64_t offset = 0;    ///< absolute payload offset
  std::uint64_t size = 0;      ///< payload bytes
  std::uint32_t crc_stored = 0;
  std::uint32_t crc_actual = 0;
};

/// One shard file with bytes beyond what the checkpoint in use recorded
/// (a crashed writer's torn payload, or payloads sealed only by a torn —
/// now superseded — checkpoint).  `--repair` truncates the shard back.
struct FsckShardIssue {
  std::string path;             ///< shard file path
  std::uint64_t keep_bytes = 0; ///< header + recorded payload bytes
  std::uint64_t trailing = 0;   ///< garbage bytes beyond keep_bytes
};

struct FsckReport {
  std::string path;
  std::uint64_t file_bytes = 0;  ///< container/manifest size at scan time
  std::uint64_t consistent_bytes = 0;  ///< end of the newest valid checkpoint
  bool salvage_used = false;  ///< strict open failed; a checkpoint was used
  std::string open_detail;    ///< why the strict open failed (empty if clean)
  bool parity_enabled = false;  ///< superblock carries kFlagParity
  bool sharded = false;         ///< path is an .szm manifest
  std::size_t shards_indexed = 0;  ///< shard files named by the checkpoint
  std::vector<FsckShardIssue> shard_trailing;  ///< shards needing truncation
  /// Shard files on disk matching this manifest's naming that the
  /// checkpoint in use does NOT index (left by a crash after a roll but
  /// before the next checkpoint) — removed by `--repair`.
  std::vector<std::string> orphan_shards;
  std::size_t fields_indexed = 0;
  std::size_t blocks_scanned = 0;  ///< data payloads verified
  std::size_t parity_scanned = 0;  ///< parity payloads verified
  std::vector<FsckBlockIssue> bad_blocks;  ///< damaged DATA payloads
  std::vector<FsckBlockIssue> bad_parity;  ///< damaged PARITY payloads
  /// Damaged payloads the parity scheme cannot heal (two bad members in
  /// one group, or a parity-less archive) — data genuinely at risk.
  std::size_t unrecoverable_payloads = 0;
  bool truncated = false;  ///< repair removed the trailing garbage
  std::size_t shards_truncated = 0;  ///< repair cut these shards back
  std::size_t orphans_removed = 0;   ///< repair deleted these shard files
  std::size_t blocks_repaired = 0;  ///< repair healed these data payloads
  std::size_t parity_rebuilt = 0;   ///< repair recomputed these parity slots

  /// Clean: strict-openable, no trailing garbage (container OR shards),
  /// no orphan shards, every payload CRC good.
  [[nodiscard]] bool clean() const noexcept {
    return !salvage_used && bad_blocks.empty() && bad_parity.empty() &&
           consistent_bytes == file_bytes && shard_trailing.empty() &&
           orphan_shards.empty();
  }
  /// Repairable damage: a truncation would restore strict readability.
  [[nodiscard]] bool needs_truncate() const noexcept {
    return consistent_bytes != file_bytes || !shard_trailing.empty() ||
           !orphan_shards.empty();
  }
  /// Damage exists and ALL of it is repairable (truncation and/or parity
  /// heal) — `--repair` would leave the archive clean.
  [[nodiscard]] bool repairable() const noexcept {
    return !clean() && unrecoverable_payloads == 0;
  }
};

/// Scan `path` without modifying it.  Throws std::runtime_error only when
/// the file has no valid checkpoint at all (nothing salvageable).
[[nodiscard]] FsckReport fsck_scan(const std::string& path);

/// Scan, then (when needed) truncate to the last consistent checkpoint and
/// heal CRC-damaged payloads through parity.  Returns the post-repair
/// report with `truncated`/`blocks_repaired`/`parity_rebuilt` describing
/// what was done.  Throws std::runtime_error when nothing is salvageable
/// or the truncation/rewrite itself fails.
FsckReport fsck_repair(const std::string& path);

/// Render a report as the multi-line human text `sz14 archive fsck` prints.
[[nodiscard]] std::string format_fsck_report(const FsckReport& report);

}  // namespace sz14::archive
