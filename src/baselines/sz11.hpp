// SZ-1.1-class lossy baseline (Di & Cappello, IPDPS'16) — the prior system
// the paper improves on.  The array is linearized and every value is
// predicted by the best of three single-dimension curve fits over the
// *preceding decompressed* values:
//   preceding  p = v[i-1]
//   linear     p = 2 v[i-1] -  v[i-2]
//   quadratic  p = 3 v[i-1] - 3 v[i-2] + v[i-3]
// A hit is coded in 2 bits (which fit matched); misses take the same
// binary-representation path as SZ-1.4.  The 2-bit code stream is Huffman
// coded.  Because the prediction is one-dimensional, multidimensional
// correlation is invisible to it — the gap SZ-1.4's Sec. III attacks.
#pragma once

#include "baselines/compressor_iface.hpp"

namespace sz14::baselines {

class Sz11 final : public CompressorBase {
 public:
  [[nodiscard]] std::string name() const override { return "sz11"; }
  [[nodiscard]] bool lossy() const override { return true; }
  [[nodiscard]] std::vector<std::uint8_t> compress(std::span<const float> data,
                                                   const Dims& dims,
                                                   double eb_abs) override;
  [[nodiscard]] std::vector<float> decompress(
      std::span<const std::uint8_t> stream) override;
  using CompressorBase::decompress;  // keep the ExecPolicy overload visible
};

}  // namespace sz14::baselines
