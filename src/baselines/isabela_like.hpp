// ISABELA-class lossy baseline (Lakshminarasimhan et al., CC:PE'13 design
// point): per window, values are sorted into a monotone curve that is easy
// to fit, the sort permutation is stored explicitly (the defining overhead
// — ceil(log2 W) bits per value — that caps ISABELA's compression factor
// around 1.2-1.4), the monotone curve is approximated by a piecewise-linear
// fit over K knots, and per-point residuals are quantized to the error
// bound so the codec stays error-bounded.
#pragma once

#include "baselines/compressor_iface.hpp"

namespace sz14::baselines {

class Isabela final : public CompressorBase {
 public:
  /// Defaults follow the reference implementation's regime: 1024-point
  /// windows (10 index bits/value — the overhead that pins ISABELA's CF
  /// near 1.2-1.4 in the paper) and a sparse knot set.
  explicit Isabela(std::size_t window = 1024, std::size_t knots = 10)
      : window_(window), knots_(knots) {}

  [[nodiscard]] std::string name() const override { return "isabela"; }
  [[nodiscard]] bool lossy() const override { return true; }
  [[nodiscard]] std::vector<std::uint8_t> compress(std::span<const float> data,
                                                   const Dims& dims,
                                                   double eb_abs) override;
  [[nodiscard]] std::vector<float> decompress(
      std::span<const std::uint8_t> stream) override;
  using CompressorBase::decompress;  // keep the ExecPolicy overload visible

 private:
  std::size_t window_;
  std::size_t knots_;
};

}  // namespace sz14::baselines
