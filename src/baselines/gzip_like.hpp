// GZIP-class lossless baseline: the float array's bytes through the
// deflate-like LZ77+Huffman pipeline.  Scientific float data has little
// byte-level redundancy, which is exactly why the paper's GZIP column sits
// at CF ~1.1-1.3.
#pragma once

#include "baselines/compressor_iface.hpp"

namespace sz14::baselines {

class Gzip final : public CompressorBase {
 public:
  [[nodiscard]] std::string name() const override { return "gzip"; }
  [[nodiscard]] bool lossy() const override { return false; }
  [[nodiscard]] std::vector<std::uint8_t> compress(std::span<const float> data,
                                                   const Dims& dims,
                                                   double eb_abs) override;
  [[nodiscard]] std::vector<float> decompress(
      std::span<const std::uint8_t> stream) override;
  using CompressorBase::decompress;  // keep the ExecPolicy overload visible
};

}  // namespace sz14::baselines
