// FPZIP-class lossless baseline (Lindstrom & Isenburg, TVCG'06 design
// point): Lorenzo prediction from previously coded neighbours, floats
// mapped to sign-magnitude-monotone integers, and the integer residuals
// entropy-coded by bit-length class.  Exactly lossless.
#pragma once

#include "baselines/compressor_iface.hpp"

namespace sz14::baselines {

class Fpzip final : public CompressorBase {
 public:
  [[nodiscard]] std::string name() const override { return "fpzip"; }
  [[nodiscard]] bool lossy() const override { return false; }
  [[nodiscard]] std::vector<std::uint8_t> compress(std::span<const float> data,
                                                   const Dims& dims,
                                                   double eb_abs) override;
  [[nodiscard]] std::vector<float> decompress(
      std::span<const std::uint8_t> stream) override;
  using CompressorBase::decompress;  // keep the ExecPolicy overload visible
};

}  // namespace sz14::baselines
