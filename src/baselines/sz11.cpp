#include "baselines/sz11.hpp"

#include <array>
#include <cmath>

#include "common/bitstream.hpp"
#include "common/bytebuffer.hpp"
#include "core/unpredictable.hpp"
#include "encoding/huffman.hpp"

namespace sz14::baselines {

namespace {

constexpr std::uint16_t kUnpredictable = 0;
constexpr std::uint16_t kPreceding = 1;
constexpr std::uint16_t kLinear = 2;
constexpr std::uint16_t kQuadratic = 3;

/// The three 1D curve-fitting predictions from reconstructed history.
std::array<double, 3> fits(const float* recon, std::size_t i) {
  const double v1 = (i >= 1) ? recon[i - 1] : 0.0;
  const double v2 = (i >= 2) ? recon[i - 2] : 0.0;
  const double v3 = (i >= 3) ? recon[i - 3] : 0.0;
  return {v1, 2.0 * v1 - v2, 3.0 * v1 - 3.0 * v2 + v3};
}

}  // namespace

std::vector<std::uint8_t> Sz11::compress(std::span<const float> data,
                                         const Dims& dims, double eb_abs) {
  if (data.size() != dims.count())
    throw std::invalid_argument("sz11: data size does not match dims");
  const std::size_t n = data.size();
  std::vector<float> recon(n);
  std::vector<std::uint16_t> codes(n);
  const UnpredictableCodec unpred(eb_abs);
  BitWriter bw;

  for (std::size_t i = 0; i < n; ++i) {
    const auto p = fits(recon.data(), i);
    // Best fit = smallest absolute error; hit iff within the bound.
    std::uint16_t code = kUnpredictable;
    double best = std::numeric_limits<double>::infinity();
    for (std::uint16_t c = 0; c < 3; ++c) {
      const double err = std::fabs(p[c] - static_cast<double>(data[i]));
      if (err < best) {
        best = err;
        code = static_cast<std::uint16_t>(kPreceding + c);
      }
    }
    float candidate = 0.0f;
    if (best <= eb_abs && std::isfinite(data[i])) {
      candidate = static_cast<float>(p[code - kPreceding]);
      // The float-cast reconstruction must itself respect the bound.
      if (!(std::fabs(static_cast<double>(candidate) -
                      static_cast<double>(data[i])) <= eb_abs))
        code = kUnpredictable;
    } else {
      code = kUnpredictable;
    }
    if (code == kUnpredictable) {
      recon[i] = unpred.encode(data[i], bw);
    } else {
      recon[i] = candidate;
    }
    codes[i] = code;
  }

  ByteWriter out;
  out.put<std::uint8_t>(static_cast<std::uint8_t>(dims.rank()));
  for (std::size_t a = 0; a < dims.rank(); ++a) out.put_varint(dims.extent(a));
  out.put<double>(eb_abs);
  huffman_encode(codes, 4, out);
  auto bits = std::move(bw).finish();
  out.put_varint(bits.size());
  out.put_bytes(bits);
  return std::move(out).take();
}

std::vector<float> Sz11::decompress(std::span<const std::uint8_t> stream) {
  ByteReader in(stream);
  const auto rank = in.get<std::uint8_t>();
  if (rank == 0 || rank > kMaxDims) throw std::runtime_error("sz11: bad rank");
  std::size_t count = 1;
  for (std::size_t a = 0; a < rank; ++a)
    count *= static_cast<std::size_t>(in.get_varint());
  const double eb = in.get<double>();
  const auto codes = huffman_decode(in);
  if (codes.size() != count)
    throw std::runtime_error("sz11: code array size mismatch");
  const auto n_bits = static_cast<std::size_t>(in.get_varint());
  const auto bits = in.get_bytes(n_bits);

  std::vector<float> recon(count);
  const UnpredictableCodec unpred(eb);
  BitReader br(bits);
  for (std::size_t i = 0; i < count; ++i) {
    if (codes[i] == kUnpredictable) {
      recon[i] = unpred.decode(br);
    } else {
      const auto p = fits(recon.data(), i);
      recon[i] = static_cast<float>(p[codes[i] - kPreceding]);
    }
  }
  return recon;
}

}  // namespace sz14::baselines
