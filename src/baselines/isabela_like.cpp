#include "baselines/isabela_like.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/bitstream.hpp"
#include "common/bytebuffer.hpp"
#include "encoding/intcodec.hpp"

namespace sz14::baselines {

namespace {

/// Piecewise-linear interpolation of the sorted curve over `knots` samples.
double interp_knots(std::span<const float> knots, std::size_t window_len,
                    std::size_t i) {
  if (knots.size() == 1) return knots[0];
  const double t = static_cast<double>(i) /
                   static_cast<double>(window_len - 1) *
                   static_cast<double>(knots.size() - 1);
  const auto k0 = static_cast<std::size_t>(t);
  const std::size_t k1 = std::min(k0 + 1, knots.size() - 1);
  const double frac = t - static_cast<double>(k0);
  return static_cast<double>(knots[k0]) +
         frac * (static_cast<double>(knots[k1]) - static_cast<double>(knots[k0]));
}

unsigned bits_for(std::size_t n) {
  return n <= 1 ? 1u
                : static_cast<unsigned>(std::bit_width(n - 1));
}

}  // namespace

std::vector<std::uint8_t> Isabela::compress(std::span<const float> data,
                                            const Dims& dims, double eb_abs) {
  if (data.size() != dims.count())
    throw std::invalid_argument("isabela: data size does not match dims");
  if (!(eb_abs > 0.0))
    throw std::invalid_argument("isabela: requires a positive error bound");

  ByteWriter out;
  out.put<std::uint8_t>(static_cast<std::uint8_t>(dims.rank()));
  for (std::size_t a = 0; a < dims.rank(); ++a) out.put_varint(dims.extent(a));
  out.put<double>(eb_abs);
  out.put_varint(window_);
  out.put_varint(knots_);

  const std::size_t n = data.size();
  BitWriter index_bits;
  std::vector<float> knot_values;
  std::vector<std::int64_t> residuals;
  std::vector<std::pair<std::size_t, float>> exceptions;
  residuals.reserve(n);

  std::vector<std::size_t> perm;
  std::vector<float> sorted;
  for (std::size_t start = 0; start < n; start += window_) {
    const std::size_t len = std::min(window_, n - start);
    perm.resize(len);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    std::stable_sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
      return data[start + a] < data[start + b];
    });
    sorted.resize(len);
    for (std::size_t i = 0; i < len; ++i) sorted[i] = data[start + perm[i]];

    // Permutation index: bits_for(len) bits per element (the ISABELA cost).
    const unsigned ib = bits_for(len);
    for (std::size_t i = 0; i < len; ++i) index_bits.put(perm[i], ib);

    // Knots: subsample the sorted curve (first/last always included).
    const std::size_t k = std::min(knots_, len);
    const std::size_t knot_base = knot_values.size();
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t pos =
          (k == 1) ? 0
                   : (j * (len - 1)) / (k - 1);
      knot_values.push_back(sorted[pos]);
    }
    // Quantized residuals against the piecewise-linear fit keep the codec
    // error-bounded: |recon - v| <= eb by the same interval argument as the
    // core quantizer.  When eb is below the float ulp at the value's
    // magnitude the cast can break the bound — those points are stored
    // verbatim as exceptions.
    const std::span<const float> kv{knot_values.data() + knot_base, k};
    for (std::size_t i = 0; i < len; ++i) {
      const double fit = interp_knots(kv, len, i);
      const double diff = static_cast<double>(sorted[i]) - fit;
      const std::int64_t q = std::llround(diff / (2.0 * eb_abs));
      residuals.push_back(q);
      const auto recon =
          static_cast<float>(fit + 2.0 * eb_abs * static_cast<double>(q));
      if (!(std::fabs(static_cast<double>(recon) -
                      static_cast<double>(sorted[i])) <= eb_abs))
        exceptions.emplace_back(start + perm[i], sorted[i]);
    }
  }

  auto idx_payload = std::move(index_bits).finish();
  out.put_varint(idx_payload.size());
  out.put_bytes(idx_payload);
  out.put_varint(knot_values.size());
  out.put_bytes({reinterpret_cast<const std::uint8_t*>(knot_values.data()),
                 knot_values.size() * sizeof(float)});
  intstream_encode(residuals, out);
  // Exceptions were collected in sorted-window order; delta-coding needs
  // ascending indices.
  std::sort(exceptions.begin(), exceptions.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.put_varint(exceptions.size());
  std::size_t prev_idx = 0;
  for (const auto& [idx, value] : exceptions) {
    out.put_varint(idx - prev_idx);
    prev_idx = idx;
    out.put<float>(value);
  }
  return std::move(out).take();
}

std::vector<float> Isabela::decompress(std::span<const std::uint8_t> stream) {
  ByteReader in(stream);
  const auto rank = in.get<std::uint8_t>();
  if (rank == 0 || rank > kMaxDims)
    throw std::runtime_error("isabela: bad rank");
  std::size_t count = 1;
  for (std::size_t a = 0; a < rank; ++a)
    count *= static_cast<std::size_t>(in.get_varint());
  const double eb = in.get<double>();
  const auto window = static_cast<std::size_t>(in.get_varint());
  const auto knots = static_cast<std::size_t>(in.get_varint());
  if (window == 0) throw std::runtime_error("isabela: zero window");

  const auto idx_bytes_n = static_cast<std::size_t>(in.get_varint());
  const auto idx_bytes = in.get_bytes(idx_bytes_n);
  const auto knot_count = static_cast<std::size_t>(in.get_varint());
  const auto knot_bytes = in.get_bytes(knot_count * sizeof(float));
  std::vector<float> knot_values(knot_count);
  std::memcpy(knot_values.data(), knot_bytes.data(), knot_bytes.size());
  const auto residuals = intstream_decode(in);
  if (residuals.size() != count)
    throw std::runtime_error("isabela: residual count mismatch");

  std::vector<float> result(count);
  BitReader ib(idx_bytes);
  std::size_t knot_base = 0;
  std::size_t r = 0;
  for (std::size_t start = 0; start < count; start += window) {
    const std::size_t len = std::min(window, count - start);
    const unsigned nbits = bits_for(len);
    std::vector<std::size_t> perm(len);
    for (auto& p : perm) {
      p = static_cast<std::size_t>(ib.get(nbits));
      if (p >= len) throw std::runtime_error("isabela: bad permutation entry");
    }
    const std::size_t k = std::min(knots, len);
    if (knot_base + k > knot_values.size())
      throw std::runtime_error("isabela: knot array truncated");
    const std::span<const float> kv{knot_values.data() + knot_base, k};
    knot_base += k;
    for (std::size_t i = 0; i < len; ++i) {
      const double fit = interp_knots(kv, len, i);
      const double v = fit + 2.0 * eb * static_cast<double>(residuals[r++]);
      result[start + perm[i]] = static_cast<float>(v);
    }
  }
  const auto n_exceptions = static_cast<std::size_t>(in.get_varint());
  std::size_t idx = 0;
  for (std::size_t e = 0; e < n_exceptions; ++e) {
    idx += static_cast<std::size_t>(in.get_varint());
    if (idx >= count) throw std::runtime_error("isabela: bad exception index");
    result[idx] = in.get<float>();
  }
  return result;
}

}  // namespace sz14::baselines
