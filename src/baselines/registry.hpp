// Adapter exposing the SZ-1.4 core through the baseline interface, so the
// benchmark harness can sweep all six evaluation codecs uniformly.
#pragma once

#include "baselines/compressor_iface.hpp"
#include "core/compressor.hpp"

namespace sz14::baselines {

class Sz14Codec final : public CompressorBase {
 public:
  explicit Sz14Codec(unsigned interval_bits = 8, unsigned layers = 1)
      : interval_bits_(interval_bits), layers_(layers) {}

  [[nodiscard]] std::string name() const override { return "sz14"; }
  [[nodiscard]] bool lossy() const override { return true; }
  [[nodiscard]] std::vector<std::uint8_t> compress(std::span<const float> data,
                                                   const Dims& dims,
                                                   double eb_abs) override;
  [[nodiscard]] std::vector<float> decompress(
      std::span<const std::uint8_t> stream) override;
  /// sz14 honors the policy on decode: hot-path mode + scratch arena.
  [[nodiscard]] std::vector<float> decompress(
      std::span<const std::uint8_t> stream, const ExecPolicy& exec) override;

  /// Stats from the most recent compress() call.
  [[nodiscard]] const CompressStats& last_stats() const noexcept {
    return stats_;
  }

 private:
  unsigned interval_bits_;
  unsigned layers_;
  CompressStats stats_{};
};

}  // namespace sz14::baselines
