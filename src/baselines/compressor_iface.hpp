// Uniform interface over all compressors in the evaluation (paper Sec. V):
// GZIP-, FPZIP-, ZFP-, SZ-1.1-, ISABELA-class baselines and SZ-1.4 itself.
// Streams are self-describing (each codec embeds shape + parameters), so
// the benchmark harness can treat them interchangeably.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/dims.hpp"
#include "common/exec_policy.hpp"

namespace sz14::baselines {

class CompressorBase {
 public:
  virtual ~CompressorBase() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Lossless codecs ignore `eb_abs`.
  [[nodiscard]] virtual bool lossy() const = 0;

  /// Compress `data` shaped `dims` under absolute bound `eb_abs`.
  [[nodiscard]] virtual std::vector<std::uint8_t> compress(
      std::span<const float> data, const Dims& dims, double eb_abs) = 0;

  /// Decompress a stream this codec produced.
  [[nodiscard]] virtual std::vector<float> decompress(
      std::span<const std::uint8_t> stream) = 0;

  /// Policy-carrying decode: `exec` selects the decode hot path and scratch
  /// arena for codecs that honor it (sz14); the default forwards to the
  /// plain overload, so baselines that decode the same way regardless of
  /// policy need not override.  Output bytes never depend on `exec`.
  [[nodiscard]] virtual std::vector<float> decompress(
      std::span<const std::uint8_t> stream, const ExecPolicy& exec) {
    (void)exec;
    return decompress(stream);
  }
};

/// All evaluation codecs in the paper's Fig. 6 order:
/// SZ-1.4, ZFP, SZ-1.1, ISABELA, FPZIP, GZIP.
std::vector<std::unique_ptr<CompressorBase>> make_all_compressors();

/// Factory by name ("sz14", "zfp", "sz11", "isabela", "fpzip", "gzip").
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<CompressorBase> make_compressor(const std::string& name);

/// All names make_compressor() accepts, in registration order.
std::vector<std::string> compressor_names();

}  // namespace sz14::baselines
