#include "baselines/registry.hpp"

#include <stdexcept>

#include "baselines/fpzip_like.hpp"
#include "baselines/gzip_like.hpp"
#include "baselines/isabela_like.hpp"
#include "baselines/sz11.hpp"
#include "baselines/zfp_like.hpp"

namespace sz14::baselines {

std::vector<std::uint8_t> Sz14Codec::compress(std::span<const float> data,
                                              const Dims& dims,
                                              double eb_abs) {
  Options opts;
  opts.eb_abs = eb_abs;
  opts.interval_bits = interval_bits_;
  opts.layers = layers_;
  return sz14::compress(data, dims, opts, &stats_);
}

std::vector<float> Sz14Codec::decompress(
    std::span<const std::uint8_t> stream) {
  return sz14::decompress(stream).data;
}

std::vector<std::unique_ptr<CompressorBase>> make_all_compressors() {
  std::vector<std::unique_ptr<CompressorBase>> v;
  v.push_back(std::make_unique<Sz14Codec>());
  v.push_back(std::make_unique<Zfp>());
  v.push_back(std::make_unique<Sz11>());
  v.push_back(std::make_unique<Isabela>());
  v.push_back(std::make_unique<Fpzip>());
  v.push_back(std::make_unique<Gzip>());
  return v;
}

std::unique_ptr<CompressorBase> make_compressor(const std::string& name) {
  if (name == "sz14") return std::make_unique<Sz14Codec>();
  if (name == "zfp") return std::make_unique<Zfp>();
  if (name == "zfp-rate") return std::make_unique<Zfp>(Zfp::Mode::kFixedRate);
  if (name == "sz11") return std::make_unique<Sz11>();
  if (name == "isabela") return std::make_unique<Isabela>();
  if (name == "fpzip") return std::make_unique<Fpzip>();
  if (name == "gzip") return std::make_unique<Gzip>();
  throw std::invalid_argument("unknown compressor: " + name);
}

}  // namespace sz14::baselines
