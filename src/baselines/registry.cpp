#include "baselines/registry.hpp"

#include <stdexcept>

#include "baselines/fpzip_like.hpp"
#include "baselines/gzip_like.hpp"
#include "baselines/isabela_like.hpp"
#include "baselines/sz11.hpp"
#include "baselines/zfp_like.hpp"

namespace sz14::baselines {

std::vector<std::uint8_t> Sz14Codec::compress(std::span<const float> data,
                                              const Dims& dims,
                                              double eb_abs) {
  Options opts;
  opts.eb_abs = eb_abs;
  opts.interval_bits = interval_bits_;
  opts.layers = layers_;
  return sz14::compress(data, dims, opts, &stats_);
}

std::vector<float> Sz14Codec::decompress(
    std::span<const std::uint8_t> stream) {
  return sz14::decompress(stream).data;
}

std::vector<float> Sz14Codec::decompress(std::span<const std::uint8_t> stream,
                                         const ExecPolicy& exec) {
  return sz14::decompress(stream, exec).data;
}

namespace {

// Operations-table registry (one row per codec), so the factory, the
// paper-order sweep, and the name listing are driven from one place.
struct Factory {
  const char* name;
  bool in_paper_sweep;  // appears in make_all_compressors() (Fig. 6 order)
  std::unique_ptr<CompressorBase> (*make)();
};

const Factory kFactories[] = {
    {"sz14", true, [] { return std::unique_ptr<CompressorBase>(std::make_unique<Sz14Codec>()); }},
    {"zfp", true, [] { return std::unique_ptr<CompressorBase>(std::make_unique<Zfp>()); }},
    {"sz11", true, [] { return std::unique_ptr<CompressorBase>(std::make_unique<Sz11>()); }},
    {"isabela", true, [] { return std::unique_ptr<CompressorBase>(std::make_unique<Isabela>()); }},
    {"fpzip", true, [] { return std::unique_ptr<CompressorBase>(std::make_unique<Fpzip>()); }},
    {"gzip", true, [] { return std::unique_ptr<CompressorBase>(std::make_unique<Gzip>()); }},
    {"zfp-rate", false, [] {
       return std::unique_ptr<CompressorBase>(
           std::make_unique<Zfp>(Zfp::Mode::kFixedRate));
     }},
};

}  // namespace

std::vector<std::unique_ptr<CompressorBase>> make_all_compressors() {
  std::vector<std::unique_ptr<CompressorBase>> v;
  for (const auto& f : kFactories)
    if (f.in_paper_sweep) v.push_back(f.make());
  return v;
}

std::unique_ptr<CompressorBase> make_compressor(const std::string& name) {
  for (const auto& f : kFactories)
    if (name == f.name) return f.make();
  throw std::invalid_argument("unknown compressor: " + name);
}

std::vector<std::string> compressor_names() {
  std::vector<std::string> names;
  for (const auto& f : kFactories) names.emplace_back(f.name);
  return names;
}

}  // namespace sz14::baselines
