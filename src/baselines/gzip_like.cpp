#include "baselines/gzip_like.hpp"

#include <cstring>

#include "common/bytebuffer.hpp"
#include "encoding/deflate_like.hpp"

namespace sz14::baselines {

std::vector<std::uint8_t> Gzip::compress(std::span<const float> data,
                                         const Dims& dims, double /*eb_abs*/) {
  if (data.size() != dims.count())
    throw std::invalid_argument("gzip: data size does not match dims");
  ByteWriter out;
  out.put<std::uint8_t>(static_cast<std::uint8_t>(dims.rank()));
  for (std::size_t a = 0; a < dims.rank(); ++a) out.put_varint(dims.extent(a));
  const auto compressed = deflate_like_compress(
      {reinterpret_cast<const std::uint8_t*>(data.data()),
       data.size() * sizeof(float)});
  out.put_varint(compressed.size());
  out.put_bytes(compressed);
  return std::move(out).take();
}

std::vector<float> Gzip::decompress(std::span<const std::uint8_t> stream) {
  ByteReader in(stream);
  const auto rank = in.get<std::uint8_t>();
  std::size_t count = 1;
  for (std::size_t a = 0; a < rank; ++a)
    count *= static_cast<std::size_t>(in.get_varint());
  const auto n = static_cast<std::size_t>(in.get_varint());
  const auto bytes = deflate_like_decompress(in.get_bytes(n));
  if (bytes.size() != count * sizeof(float))
    throw std::runtime_error("gzip: decompressed size mismatch");
  std::vector<float> values(count);
  std::memcpy(values.data(), bytes.data(), bytes.size());
  return values;
}

}  // namespace sz14::baselines
