// ZFP-class lossy baseline (Lindstrom, TVCG'14 design point), built from
// scratch: the data is cut into 4^d blocks; each block is aligned to a
// common exponent and cast to a block-local fixed-point lattice, run
// through a separable reversible integer wavelet (Haar lifting), and the
// coefficients are embedded-bit-plane coded in sequency order.
//
// Two modes, matching how the paper exercises ZFP:
//   kAccuracy  — encode down to the plane implied by an absolute tolerance.
//                Deliberately conservative (guard bits for the inverse-
//                transform error amplification), which reproduces the
//                paper's Table V observation that ZFP's real max error sits
//                well below the user bound.  And because the fixed-point
//                cast error is 2^(emax-29) per block, a block whose value
//                range is huge cannot honour a tiny tolerance — the
//                CDNUMC-style bound violation of Sec. V-A emerges naturally.
//   kFixedRate — truncate every block's embedded stream at exactly
//                `rate * 4^d` bits: the fixed-bit-rate mode the paper uses
//                for the rate-distortion study (Fig. 8).
#pragma once

#include "baselines/compressor_iface.hpp"

namespace sz14::baselines {

class Zfp final : public CompressorBase {
 public:
  enum class Mode { kAccuracy, kFixedRate };

  explicit Zfp(Mode mode = Mode::kAccuracy, double rate_bits_per_value = 8.0)
      : mode_(mode), rate_(rate_bits_per_value) {}

  [[nodiscard]] std::string name() const override { return "zfp"; }
  [[nodiscard]] bool lossy() const override { return true; }

  /// In kAccuracy mode `eb_abs` is the tolerance; in kFixedRate mode it is
  /// ignored and the configured rate applies.
  [[nodiscard]] std::vector<std::uint8_t> compress(std::span<const float> data,
                                                   const Dims& dims,
                                                   double eb_abs) override;
  [[nodiscard]] std::vector<float> decompress(
      std::span<const std::uint8_t> stream) override;
  using CompressorBase::decompress;  // keep the ExecPolicy overload visible

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  Mode mode_;
  double rate_;
};

}  // namespace sz14::baselines
