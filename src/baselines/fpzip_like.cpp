#include "baselines/fpzip_like.hpp"

#include <array>
#include <bit>

#include "common/bytebuffer.hpp"
#include "core/predictor.hpp"
#include "encoding/intcodec.hpp"

namespace sz14::baselines {

namespace {

// Map a float's bits to an integer that is monotone in the float ordering
// (negative floats reverse): the classic trick that makes prediction
// residuals small for numerically close values.
inline std::int64_t float_to_ordered(float v) {
  const auto bits = std::bit_cast<std::uint32_t>(v);
  const std::uint32_t m =
      (bits & 0x8000'0000u) ? ~bits : (bits | 0x8000'0000u);
  return static_cast<std::int64_t>(m);
}

inline float ordered_to_float(std::int64_t m) {
  const auto u = static_cast<std::uint32_t>(m);
  const std::uint32_t bits = (u & 0x8000'0000u) ? (u & 0x7FFF'FFFFu) : ~u;
  return std::bit_cast<float>(bits);
}

}  // namespace

std::vector<std::uint8_t> Fpzip::compress(std::span<const float> data,
                                          const Dims& dims,
                                          double /*eb_abs*/) {
  if (data.size() != dims.count())
    throw std::invalid_argument("fpzip: data size does not match dims");
  const LayerPredictor predictor(dims, 1);  // Lorenzo
  CoordWalker walker(dims);
  std::vector<std::int64_t> residuals(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Lossless: prediction basis is the original data itself.
    const double pred = predictor.predict<float>(data, walker.coord(), i);
    const std::int64_t pi = float_to_ordered(static_cast<float>(pred));
    residuals[i] = float_to_ordered(data[i]) - pi;
    walker.advance();
  }
  ByteWriter out;
  out.put<std::uint8_t>(static_cast<std::uint8_t>(dims.rank()));
  for (std::size_t a = 0; a < dims.rank(); ++a) out.put_varint(dims.extent(a));
  intstream_encode(residuals, out);
  return std::move(out).take();
}

std::vector<float> Fpzip::decompress(std::span<const std::uint8_t> stream) {
  ByteReader in(stream);
  const auto rank = in.get<std::uint8_t>();
  std::array<std::size_t, kMaxDims> ext{};
  if (rank == 0 || rank > kMaxDims)
    throw std::runtime_error("fpzip: bad rank");
  for (std::size_t a = 0; a < rank; ++a)
    ext[a] = static_cast<std::size_t>(in.get_varint());
  const Dims dims(std::span<const std::size_t>(ext.data(), rank));
  const auto residuals = intstream_decode(in);
  if (residuals.size() != dims.count())
    throw std::runtime_error("fpzip: residual count mismatch");

  std::vector<float> values(dims.count());
  const LayerPredictor predictor(dims, 1);
  CoordWalker walker(dims);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double pred = predictor.predict<float>(
        {values.data(), values.size()}, walker.coord(), i);
    const std::int64_t pi = float_to_ordered(static_cast<float>(pred));
    values[i] = ordered_to_float(pi + residuals[i]);
    walker.advance();
  }
  return values;
}

}  // namespace sz14::baselines
