#include "baselines/zfp_like.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/bitstream.hpp"
#include "common/bytebuffer.hpp"

namespace sz14::baselines {

namespace {

constexpr std::size_t kBlockSide = 4;

/// Bit budget bookkeeping shared by the encoder and decoder so both stop
/// at exactly the same bit in fixed-rate mode.  `limit == 0` means
/// unlimited (accuracy mode).
struct Budget {
  std::uint64_t limit = 0;
  std::uint64_t used = 0;
  [[nodiscard]] bool can(std::uint64_t n) const {
    return limit == 0 || used + n <= limit;
  }
  void spend(std::uint64_t n) { used += n; }
};

/// Reversible integer Haar lifting on a stride-s line of 4.
void fwd_haar4(std::int64_t* p, std::size_t s) {
  std::int64_t v0 = p[0], v1 = p[s], v2 = p[2 * s], v3 = p[3 * s];
  const std::int64_t h0 = v0 - v1;
  const std::int64_t l0 = v1 + (h0 >> 1);
  const std::int64_t h1 = v2 - v3;
  const std::int64_t l1 = v3 + (h1 >> 1);
  const std::int64_t H = l0 - l1;
  const std::int64_t L = l1 + (H >> 1);
  p[0] = L;
  p[s] = H;
  p[2 * s] = h0;
  p[3 * s] = h1;
}

void inv_haar4(std::int64_t* p, std::size_t s) {
  const std::int64_t L = p[0], H = p[s], h0 = p[2 * s], h1 = p[3 * s];
  const std::int64_t l1 = L - (H >> 1);
  const std::int64_t l0 = l1 + H;
  const std::int64_t v1 = l0 - (h0 >> 1);
  const std::int64_t v0 = v1 + h0;
  const std::int64_t v3 = l1 - (h1 >> 1);
  const std::int64_t v2 = v3 + h1;
  p[0] = v0;
  p[s] = v1;
  p[2 * s] = v2;
  p[3 * s] = v3;
}

/// Sequency weight of a within-block position along one axis:
/// position 0 holds the coarse average (weight 0), 1 the coarse detail,
/// 2 and 3 the fine details.
constexpr int kAxisWeight[kBlockSide] = {0, 1, 2, 2};

struct BlockGeometry {
  std::size_t rank;
  std::size_t block_count;                 // 4^rank
  std::vector<std::size_t> order;          // coefficient visit order
  std::array<std::size_t, kMaxDims> blocks_per_axis{};
  std::size_t total_blocks = 1;

  BlockGeometry(const Dims& dims) : rank(dims.rank()) {
    block_count = 1;
    for (std::size_t a = 0; a < rank; ++a) block_count *= kBlockSide;
    for (std::size_t a = 0; a < rank; ++a) {
      blocks_per_axis[a] = (dims.extent(a) + kBlockSide - 1) / kBlockSide;
      total_blocks *= blocks_per_axis[a];
    }
    // Sequency ordering: sort block-local indices by total weight.
    order.resize(block_count);
    std::iota(order.begin(), order.end(), std::size_t{0});
    auto weight = [this](std::size_t idx) {
      int w = 0;
      for (std::size_t a = rank; a-- > 0;) {
        w += kAxisWeight[idx % kBlockSide];
        idx /= kBlockSide;
      }
      return w;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                       return weight(x) < weight(y);
                     });
  }
};

/// Apply the separable transform to a gathered 4^rank block.
void fwd_transform(std::int64_t* b, std::size_t rank) {
  if (rank == 1) {
    fwd_haar4(b, 1);
    return;
  }
  if (rank == 2) {
    for (std::size_t r = 0; r < 4; ++r) fwd_haar4(b + 4 * r, 1);   // rows
    for (std::size_t c = 0; c < 4; ++c) fwd_haar4(b + c, 4);       // cols
    return;
  }
  // rank == 3
  for (std::size_t k = 0; k < 4; ++k)
    for (std::size_t r = 0; r < 4; ++r) fwd_haar4(b + 16 * k + 4 * r, 1);
  for (std::size_t k = 0; k < 4; ++k)
    for (std::size_t c = 0; c < 4; ++c) fwd_haar4(b + 16 * k + c, 4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) fwd_haar4(b + 4 * r + c, 16);
}

void inv_transform(std::int64_t* b, std::size_t rank) {
  if (rank == 1) {
    inv_haar4(b, 1);
    return;
  }
  if (rank == 2) {
    for (std::size_t c = 0; c < 4; ++c) inv_haar4(b + c, 4);
    for (std::size_t r = 0; r < 4; ++r) inv_haar4(b + 4 * r, 1);
    return;
  }
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) inv_haar4(b + 4 * r + c, 16);
  for (std::size_t k = 0; k < 4; ++k)
    for (std::size_t c = 0; c < 4; ++c) inv_haar4(b + 16 * k + c, 4);
  for (std::size_t k = 0; k < 4; ++k)
    for (std::size_t r = 0; r < 4; ++r) inv_haar4(b + 16 * k + 4 * r, 1);
}

/// Guard bits against inverse-transform error amplification when choosing
/// the stop plane from a tolerance (see header comment).  The inverse Haar
/// lifting grows worst-case error by a small constant per axis; rank + 2
/// bits keep the bound while leaving ZFP visibly over-conservative
/// (Table V shape) without destroying its compression factor.
int guard_bits(std::size_t rank) { return static_cast<int>(rank + 2); }

/// Stop plane for accuracy mode: truncation error in lattice units must
/// stay under tol * 2^(29 - emax) even after amplification.
int stop_plane(double tol, int emax, std::size_t rank) {
  if (!(tol > 0.0)) return 0;
  const double tol_lattice = std::ldexp(tol, 29 - emax);
  if (tol_lattice <= 1.0) return 0;
  const int p = static_cast<int>(std::floor(std::log2(tol_lattice))) -
                guard_bits(rank);
  return std::max(0, p);
}

struct BitSink {
  BitWriter* bw;
  Budget* budget;
  void put(std::uint64_t v, unsigned n) {
    if (!budget->can(n)) return;  // silently drop once over budget
    budget->spend(n);
    bw->put(v, n);
  }
  [[nodiscard]] bool can(unsigned n) const { return budget->can(n); }
};

struct BitSource {
  BitReader* br;
  Budget* budget;
  [[nodiscard]] std::uint64_t get(unsigned n) {
    if (!budget->can(n)) return 0;  // mirrors the encoder's drop
    budget->spend(n);
    return br->get(n);
  }
  [[nodiscard]] bool can(unsigned n) const { return budget->can(n); }
};

/// Embedded sign-magnitude bit-plane encoder over ordered coefficients,
/// with per-plane group testing: one bit says whether the plane carries any
/// NEW significant coefficient, so high zero planes cost one bit instead of
/// one per coefficient.
void encode_planes(const std::int64_t* coeffs, const BlockGeometry& geo,
                   int min_plane, BitSink& sink) {
  const std::size_t n = geo.block_count;
  std::vector<std::uint64_t> mag(n);
  std::vector<std::uint8_t> neg(n), sig(n, 0);
  std::uint64_t maxmag = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t c = coeffs[geo.order[i]];
    mag[i] = static_cast<std::uint64_t>(c < 0 ? -c : c);
    neg[i] = c < 0;
    maxmag = std::max(maxmag, mag[i]);
  }
  const unsigned top = maxmag ? 64u - static_cast<unsigned>(
                                          std::countl_zero(maxmag))
                              : 0u;  // number of planes
  if (!sink.can(6)) return;
  sink.put(top, 6);
  if (top == 0) return;
  for (int plane = static_cast<int>(top) - 1; plane >= min_plane; --plane) {
    // Refinement bits for coefficients already significant at plane start.
    // (Each i is visited once per plane, and sig[i] flips only inside the
    // significance branch of this same visit, so a single pass stays in
    // lock-step with the decoder.)
    bool newsig = false;
    for (std::size_t i = 0; i < n; ++i)
      if (!sig[i] && ((mag[i] >> plane) & 1u)) newsig = true;
    if (!sink.can(1)) return;
    sink.put(newsig ? 1u : 0u, 1);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t bit = (mag[i] >> plane) & 1u;
      if (sig[i]) {
        if (!sink.can(1)) return;
        sink.put(bit, 1);
      } else if (newsig) {
        if (!sink.can(1)) return;
        sink.put(bit, 1);
        if (bit) {
          if (!sink.can(1)) return;
          sink.put(neg[i], 1);
          sig[i] = 1;
        }
      }
    }
  }
}

void decode_planes(std::int64_t* coeffs, const BlockGeometry& geo,
                   int min_plane, BitSource& src) {
  const std::size_t n = geo.block_count;
  std::vector<std::uint64_t> mag(n, 0);
  std::vector<std::uint8_t> neg(n, 0), sig(n, 0);
  if (!src.can(6)) {
    std::fill_n(coeffs, n, std::int64_t{0});
    return;
  }
  const unsigned top = static_cast<unsigned>(src.get(6));
  int last_full_plane = static_cast<int>(top);  // deepest fully decoded plane
  if (top > 0) {
    bool out_of_bits = false;
    for (int plane = static_cast<int>(top) - 1;
         plane >= min_plane && !out_of_bits; --plane) {
      if (!src.can(1)) break;
      const bool newsig = src.get(1) != 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (sig[i]) {
          if (!src.can(1)) {
            out_of_bits = true;
            break;
          }
          if (src.get(1)) mag[i] |= std::uint64_t{1} << plane;
        } else if (newsig) {
          if (!src.can(1)) {
            out_of_bits = true;
            break;
          }
          if (src.get(1)) {
            if (!src.can(1)) {
              out_of_bits = true;
              break;
            }
            neg[i] = static_cast<std::uint8_t>(src.get(1));
            sig[i] = 1;
            mag[i] |= std::uint64_t{1} << plane;
          }
        }
      }
      if (!out_of_bits) last_full_plane = plane;
    }
  }
  // Midpoint reconstruction: centre each significant coefficient within its
  // undecoded tail.
  if (last_full_plane > 0) {
    const std::uint64_t half = std::uint64_t{1} << (last_full_plane - 1);
    for (std::size_t i = 0; i < n; ++i)
      if (sig[i]) mag[i] |= half;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto m = static_cast<std::int64_t>(mag[i]);
    coeffs[geo.order[i]] = neg[i] ? -m : m;
  }
}

/// Gather one block with clamp-replication padding at the domain edge.
void gather(std::span<const float> data, const Dims& dims,
            std::span<const std::size_t> origin, float* block) {
  const std::size_t rank = dims.rank();
  std::array<std::size_t, kMaxDims> c{};
  const std::size_t n = [&] {
    std::size_t t = 1;
    for (std::size_t a = 0; a < rank; ++a) t *= kBlockSide;
    return t;
  }();
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t lin = 0;
    for (std::size_t a = 0; a < rank; ++a) {
      const std::size_t coord =
          std::min(origin[a] + c[a], dims.extent(a) - 1);
      lin += coord * dims.stride(a);
    }
    block[i] = data[lin];
    for (std::size_t a = rank; a-- > 0;) {
      if (++c[a] < kBlockSide) break;
      c[a] = 0;
    }
  }
}

/// Scatter one block, skipping padded cells.
void scatter(std::span<float> data, const Dims& dims,
             std::span<const std::size_t> origin, const float* block) {
  const std::size_t rank = dims.rank();
  std::array<std::size_t, kMaxDims> c{};
  std::size_t n = 1;
  for (std::size_t a = 0; a < rank; ++a) n *= kBlockSide;
  for (std::size_t i = 0; i < n; ++i) {
    bool inside = true;
    std::size_t lin = 0;
    for (std::size_t a = 0; a < rank; ++a) {
      const std::size_t coord = origin[a] + c[a];
      if (coord >= dims.extent(a)) {
        inside = false;
        break;
      }
      lin += coord * dims.stride(a);
    }
    if (inside) data[lin] = block[i];
    for (std::size_t a = rank; a-- > 0;) {
      if (++c[a] < kBlockSide) break;
      c[a] = 0;
    }
  }
}

constexpr std::uint8_t kModeAccuracy = 0;
constexpr std::uint8_t kModeFixedRate = 1;

}  // namespace

std::vector<std::uint8_t> Zfp::compress(std::span<const float> data,
                                        const Dims& dims, double eb_abs) {
  if (data.size() != dims.count())
    throw std::invalid_argument("zfp: data size does not match dims");
  if (dims.rank() > 3)
    throw std::invalid_argument("zfp: rank > 3 not supported");
  const BlockGeometry geo(dims);
  const double tol = (mode_ == Mode::kAccuracy) ? eb_abs : 0.0;

  ByteWriter out;
  out.put<std::uint8_t>(static_cast<std::uint8_t>(dims.rank()));
  for (std::size_t a = 0; a < dims.rank(); ++a) out.put_varint(dims.extent(a));
  out.put<std::uint8_t>(mode_ == Mode::kAccuracy ? kModeAccuracy
                                                 : kModeFixedRate);
  out.put<double>(tol);
  out.put<double>(rate_);

  const std::uint64_t block_budget =
      (mode_ == Mode::kFixedRate)
          ? static_cast<std::uint64_t>(std::llround(
                rate_ * static_cast<double>(geo.block_count)))
          : 0;
  if (mode_ == Mode::kFixedRate && block_budget == 0)
    throw std::invalid_argument("zfp: fixed-rate budget must be >= 1 bit");

  BitWriter bw;
  std::vector<float> fblock(geo.block_count);
  std::vector<std::int64_t> iblock(geo.block_count);
  std::array<std::size_t, kMaxDims> bidx{};
  std::array<std::size_t, kMaxDims> origin{};

  for (std::size_t b = 0; b < geo.total_blocks; ++b) {
    for (std::size_t a = 0; a < dims.rank(); ++a)
      origin[a] = bidx[a] * kBlockSide;
    gather(data, dims, {origin.data(), dims.rank()}, fblock.data());

    Budget budget{block_budget, 0};
    BitSink sink{&bw, &budget};

    double maxabs = 0;
    for (float v : fblock)
      maxabs = std::max(maxabs, std::fabs(static_cast<double>(v)));
    const bool skip =
        maxabs == 0.0 || (mode_ == Mode::kAccuracy && maxabs <= tol);
    sink.put(skip ? 0u : 1u, 1);
    if (!skip) {
      // Clamp so the biased 8-bit field cannot wrap for denormal blocks.
      const int emax = std::max(std::ilogb(maxabs), -126);
      sink.put(static_cast<std::uint32_t>(emax + 127) & 0xFFu, 8);
      const double scale = std::ldexp(1.0, 29 - emax);
      for (std::size_t i = 0; i < geo.block_count; ++i)
        iblock[i] = static_cast<std::int64_t>(
            std::llround(static_cast<double>(fblock[i]) * scale));
      fwd_transform(iblock.data(), dims.rank());
      const int min_plane =
          (mode_ == Mode::kAccuracy) ? stop_plane(tol, emax, dims.rank()) : 0;
      encode_planes(iblock.data(), geo, min_plane, sink);
    }
    // Fixed-rate: pad to exactly the block budget so every block occupies
    // rate * 4^d bits.
    if (mode_ == Mode::kFixedRate) {
      while (budget.used < block_budget) {
        const auto chunk = static_cast<unsigned>(
            std::min<std::uint64_t>(block_budget - budget.used, 32));
        bw.put(0, chunk);
        budget.spend(chunk);
      }
    }
    for (std::size_t a = dims.rank(); a-- > 0;) {
      if (++bidx[a] < geo.blocks_per_axis[a]) break;
      bidx[a] = 0;
    }
  }
  auto payload = std::move(bw).finish();
  out.put_varint(payload.size());
  out.put_bytes(payload);
  return std::move(out).take();
}

std::vector<float> Zfp::decompress(std::span<const std::uint8_t> stream) {
  ByteReader in(stream);
  const auto rank = in.get<std::uint8_t>();
  if (rank == 0 || rank > 3) throw std::runtime_error("zfp: bad rank");
  std::array<std::size_t, kMaxDims> ext{};
  for (std::size_t a = 0; a < rank; ++a)
    ext[a] = static_cast<std::size_t>(in.get_varint());
  const Dims dims(std::span<const std::size_t>(ext.data(), rank));
  const auto mode_byte = in.get<std::uint8_t>();
  const double tol = in.get<double>();
  const double rate = in.get<double>();
  const bool fixed_rate = mode_byte == kModeFixedRate;
  const BlockGeometry geo(dims);
  const std::uint64_t block_budget =
      fixed_rate ? static_cast<std::uint64_t>(std::llround(
                       rate * static_cast<double>(geo.block_count)))
                 : 0;

  const auto n_payload = static_cast<std::size_t>(in.get_varint());
  const auto payload = in.get_bytes(n_payload);
  BitReader br(payload);

  std::vector<float> result(dims.count(), 0.0f);
  std::vector<float> fblock(geo.block_count);
  std::vector<std::int64_t> iblock(geo.block_count);
  std::array<std::size_t, kMaxDims> bidx{};
  std::array<std::size_t, kMaxDims> origin{};

  for (std::size_t b = 0; b < geo.total_blocks; ++b) {
    for (std::size_t a = 0; a < rank; ++a) origin[a] = bidx[a] * kBlockSide;

    Budget budget{block_budget, 0};
    BitSource src{&br, &budget};
    const bool nonzero = src.get(1) != 0;
    if (nonzero) {
      const int emax = static_cast<int>(src.get(8)) - 127;
      const int min_plane =
          fixed_rate ? 0 : stop_plane(tol, emax, rank);
      decode_planes(iblock.data(), geo, min_plane, src);
      inv_transform(iblock.data(), rank);
      const double inv_scale = std::ldexp(1.0, emax - 29);
      for (std::size_t i = 0; i < geo.block_count; ++i)
        fblock[i] =
            static_cast<float>(static_cast<double>(iblock[i]) * inv_scale);
    } else {
      std::fill(fblock.begin(), fblock.end(), 0.0f);
    }
    // Skip the block's padding in fixed-rate mode.
    if (fixed_rate && budget.used < block_budget) {
      std::uint64_t rest = block_budget - budget.used;
      while (rest > 0) {
        const auto chunk = static_cast<unsigned>(std::min<std::uint64_t>(rest, 64));
        (void)br.get(chunk);
        rest -= chunk;
      }
    }
    scatter(result, dims, {origin.data(), rank}, fblock.data());
    for (std::size_t a = rank; a-- > 0;) {
      if (++bidx[a] < geo.blocks_per_axis[a]) break;
      bidx[a] = 0;
    }
  }
  return result;
}

}  // namespace sz14::baselines
